//! The full-system machine: core + hierarchy + DRAM + OS + XMem, driven by
//! a workload generator through the [`TraceSink`] interface.
//!
//! A run has two passes, mirroring the paper's compile/load/execute flow:
//!
//! 1. **Scan** ([`ScanSink`]): the workload's `CreateAtom` calls are
//!    collected — this is the *compiler summarization* that produces the
//!    binary's atom segment (§3.5.2).
//! 2. **Load + execute** ([`Machine`]): the OS loads the segment into the
//!    GAT, the attribute translator fills each component's PAT, the frame
//!    policy is constructed (for XMem placement, from the atoms' placement
//!    primitives), and then the trace runs for real — ops through the core
//!    model, XMem calls through `XMemLib` into the AMU.

use crate::config::{FramePolicyKind, SystemConfig};
use crate::report::RunReport;
use cache_sim::hierarchy::{Hierarchy, XmemContext};
use cpu_sim::core::Core;
use cpu_sim::trace::{MemoryModel, Op};
use dram_sim::Dram;
use os_sim::loader::{load_segment, LoadedProcess};
use os_sim::os::Os;
use os_sim::placement::FramePolicy;
use os_sim::tlb::Tlb;
use std::collections::HashMap;
use workloads::sink::TraceSink;
use xmem_core::aam::AamConfig;
use xmem_core::addr::VirtAddr;
use xmem_core::amu::{AmuConfig, AtomManagementUnit, Mmu};
use xmem_core::atom::{AtomId, StaticAtom};
use xmem_core::attrs::AtomAttributes;
use xmem_core::pat::Pat;
use xmem_core::process::ProcessId;
use xmem_core::segment::AtomSegment;
use xmem_core::translate::{AttributeTranslator, CachePrimitive, PrefetcherPrimitive};
use xmem_core::xmemlib::{CallSite, XMemLib};

/// Pass-1 sink: records atom creation only (everything else is dropped).
#[derive(Debug, Default)]
pub struct ScanSink {
    atoms: Vec<(String, AtomAttributes)>,
    next_va: u64,
}

impl ScanSink {
    /// Creates an empty scan sink.
    pub fn new() -> Self {
        ScanSink {
            atoms: Vec::new(),
            next_va: 4096,
        }
    }

    /// The atom segment summarizing the scanned program.
    pub fn segment(&self) -> AtomSegment {
        let mut seg = AtomSegment::new();
        for (i, (label, attrs)) in self.atoms.iter().enumerate() {
            seg.push(StaticAtom::new(
                AtomId::new(i as u8),
                label.clone(),
                attrs.clone(),
            ));
        }
        seg
    }
}

impl TraceSink for ScanSink {
    fn op(&mut self, _op: Op) {}

    fn alloc(&mut self, bytes: u64, _atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        base
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|(l, _)| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push((label.to_owned(), attrs));
        id
    }

    fn map(&mut self, _atom: AtomId, _start: u64, _len: u64) {}
    fn unmap(&mut self, _start: u64, _len: u64) {}
    fn map_2d(&mut self, _atom: AtomId, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn unmap_2d(&mut self, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn activate(&mut self, _atom: AtomId) {}
    fn deactivate(&mut self, _atom: AtomId) {}
}

/// The memory side of the machine (everything the core's loads/stores see).
#[derive(Debug)]
struct MemSystem {
    hierarchy: Hierarchy,
    amu: AtomManagementUnit,
    cache_pat: Pat<CachePrimitive>,
    pf_pat: Pat<PrefetcherPrimitive>,
    os: Os,
    tlb: Option<Tlb>,
    xmem_enabled: bool,
}

impl MemoryModel for MemSystem {
    fn access(&mut self, va: u64, is_write: bool, now: u64) -> u64 {
        let walk = self
            .tlb
            .as_mut()
            .map(|t| t.translate_cost(VirtAddr::new(va)))
            .unwrap_or(0);
        let pa = self
            .os
            .page_table()
            .translate(VirtAddr::new(va))
            .unwrap_or_else(|| panic!("access to unallocated VA {va:#x}"));
        let ctx = self.xmem_enabled.then_some(XmemContext {
            amu: &mut self.amu,
            cache_pat: &self.cache_pat,
            pf_pat: &self.pf_pat,
        });
        walk + self.hierarchy.access(pa.raw(), is_write, now + walk, ctx)
    }
}

/// The executing machine (pass 2). Implements [`TraceSink`] so the workload
/// generator drives it directly.
#[derive(Debug)]
pub struct Machine {
    core: Core,
    mem: MemSystem,
    lib: XMemLib,
    labels: HashMap<String, AtomId>,
    next_site: u32,
}

/// Synthetic call-site file for atoms created through the sink interface.
const SINK_SITE_FILE: &str = "<workload>";

impl Machine {
    /// Builds the machine for `config`, loading `loaded` (the scanned
    /// program) into the OS/XMem tables.
    fn new(config: &SystemConfig, loaded: &LoadedProcess) -> Self {
        let policy = match config.frame_policy {
            FramePolicyKind::Sequential => FramePolicy::Sequential,
            FramePolicyKind::Randomized { seed } => FramePolicy::Randomized { seed },
            FramePolicyKind::XmemPlacement => FramePolicy::Xmem {
                atoms: loaded.placement.clone(),
                mapping: config.mapping,
                dram: config.dram,
            },
        };
        let os = Os::new(config.phys_bytes, 4096, policy);
        let dram = if config.ideal_rbl {
            Dram::new_ideal_rbl(config.dram, config.mapping)
        } else {
            Dram::new(config.dram, config.mapping)
        };
        let amu = AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: config.phys_bytes,
                ..AamConfig::default()
            },
            alb_entries: 256,
            page_size: 4096,
        });
        let xmem_enabled = config.hierarchy.xmem != cache_sim::XmemMode::Off;
        let mut cache_pat = Pat::new();
        let mut pf_pat = Pat::new();
        if xmem_enabled {
            let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
            cache_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_cache(a));
            pf_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_prefetcher(a));
        }
        Machine {
            core: Core::new(config.core),
            mem: MemSystem {
                hierarchy: Hierarchy::new(config.hierarchy, dram),
                amu,
                cache_pat,
                pf_pat,
                os,
                tlb: config.tlb.map(Tlb::new),
                xmem_enabled,
            },
            lib: XMemLib::new(),
            labels: HashMap::new(),
            next_site: 0,
        }
    }

    /// Final statistics for the run.
    fn report(mut self) -> RunReport {
        let core = self.core.stats();
        self.lib.counter_mut().count_program(core.instructions);
        RunReport {
            core,
            l1: self.mem.hierarchy.l1_stats(),
            l2: self.mem.hierarchy.l2_stats(),
            l3: self.mem.hierarchy.l3_stats(),
            dram: self.mem.hierarchy.dram_stats(),
            alb: self.mem.amu.alb_stats(),
            xmem_instructions: self.lib.counter().xmem_instructions(),
            instruction_overhead: self.lib.counter().overhead_fraction(),
            xmem_prefetch: self.mem.hierarchy.xmem_prefetch_stats(),
            stride_prefetch: self.mem.hierarchy.stride_prefetch_stats(),
        }
    }
}

impl TraceSink for Machine {
    fn op(&mut self, op: Op) {
        self.core.step(op, &mut self.mem);
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.mem
            .os
            .malloc(bytes, atom)
            .expect("simulated physical memory exhausted")
            .raw()
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(&id) = self.labels.get(label) {
            return id;
        }
        let site = CallSite {
            file: SINK_SITE_FILE,
            line: self.next_site,
        };
        self.next_site += 1;
        let id = self
            .lib
            .create_atom(site, label, attrs)
            .expect("atom limit exceeded");
        self.labels.insert(label.to_owned(), id);
        id
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(start),
                len,
            )
            .expect("ATOM_MAP failed");
    }

    fn unmap(&mut self, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(start),
                len,
            )
            .expect("ATOM_UNMAP failed");
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            .expect("ATOM_MAP2D failed");
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            .expect("ATOM_UNMAP2D failed");
    }

    fn activate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_activate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            .expect("ATOM_ACTIVATE failed");
    }

    fn deactivate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_deactivate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            .expect("ATOM_DEACTIVATE failed");
    }
}

/// Runs `generate` on a machine configured by `config`, returning run
/// statistics. Deterministic: identical inputs give identical reports.
///
/// # Examples
///
/// ```
/// use xmem_sim::{run_workload, SystemConfig, SystemKind};
/// use workloads::polybench::{KernelParams, PolybenchKernel};
///
/// let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
/// let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
/// let report = run_workload(&cfg, |sink| PolybenchKernel::Gemm.generate(&p, sink));
/// assert!(report.core.cycles > 0);
/// ```
pub fn run_workload(config: &SystemConfig, generate: impl Fn(&mut dyn TraceSink)) -> RunReport {
    // Pass 1: compile-time summarization.
    let mut scan = ScanSink::new();
    generate(&mut scan);
    let segment = scan.segment();
    // Load time: GAT + translator + PATs + placement primitives.
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    // Execution.
    let mut machine = Machine::new(config, &loaded);
    generate(&mut machine);
    machine.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use workloads::polybench::{KernelParams, PolybenchKernel};

    fn params() -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: 2048,
            steps: 2,
            reuse: 200,
        }
    }

    #[test]
    fn baseline_and_xmem_run_same_work() {
        let p = params();
        let base = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        let xmem = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        assert_eq!(base.core.instructions, xmem.core.instructions);
        assert_eq!(base.core.loads, xmem.core.loads);
        assert_eq!(base.xmem_instructions, 0);
        assert!(xmem.xmem_instructions > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let a = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        let b = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        assert_eq!(a.core, b.core);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn alb_sees_traffic_with_xmem() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(r.alb.lookups() > 0);
        assert!(r.alb.hit_rate() > 0.5, "ALB hit rate {}", r.alb.hit_rate());
    }

    #[test]
    fn tlb_adds_walk_cost_but_preserves_work() {
        let p = params();
        let base_cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let tlb_cfg = base_cfg.with_tlb();
        let without = run_workload(&base_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        let with = run_workload(&tlb_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(without.core.instructions, with.core.instructions);
        assert!(
            with.core.cycles > without.core.cycles,
            "page walks must cost time: {} vs {}",
            with.core.cycles,
            without.core.cycles
        );
        // Small footprint → high TLB hit rate → bounded overhead.
        assert!((with.core.cycles as f64) < without.core.cycles as f64 * 1.5);
    }

    #[test]
    fn instruction_overhead_is_tiny() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(
            r.instruction_overhead < 0.005,
            "overhead {}",
            r.instruction_overhead
        );
    }
}
