//! The full-system machine: core + hierarchy + DRAM + OS + XMem, driven by
//! a workload generator through the [`TraceSink`] interface.
//!
//! A run has two passes, mirroring the paper's compile/load/execute flow:
//!
//! 1. **Scan** ([`ScanSink`]): the workload's `CreateAtom` calls are
//!    collected — this is the *compiler summarization* that produces the
//!    binary's atom segment (§3.5.2).
//! 2. **Load + execute** ([`Machine`]): the OS loads the segment into the
//!    GAT, the attribute translator fills each component's PAT, the frame
//!    policy is constructed (for XMem placement, from the atoms' placement
//!    primitives), and then the trace runs for real — ops through the core
//!    model, XMem calls through `XMemLib` into the AMU.

use crate::config::{FramePolicyKind, SystemConfig};
use crate::report::RunReport;
use crate::sampling::{SamplePhase, SamplingSpec, SamplingSummary, WindowFeatures};
use crate::telemetry::{TelemetrySample, TelemetrySeries};
use cache_sim::hierarchy::{Hierarchy, XmemContext};
use cpu_sim::batch::{MemoryPath, OpAttrs, OpBatch, OpKind};
use cpu_sim::core::Core;
use cpu_sim::trace::Op;
use dram_sim::Dram;
use os_sim::loader::{load_segment, LoadedProcess};
use os_sim::os::{Os, OsError};
use os_sim::placement::FramePolicy;
use os_sim::tlb::Tlb;
use std::collections::BTreeMap;
use workloads::sink::{BatchEmitter, TraceSink};
use xmem_core::aam::AamConfig;
use xmem_core::addr::{addr_to_index, VirtAddr};
use xmem_core::amu::{AmuConfig, AtomManagementUnit, Mmu};
use xmem_core::atom::{AtomId, StaticAtom};
use xmem_core::attrs::AtomAttributes;
use xmem_core::pat::Pat;
use xmem_core::process::ProcessId;
use xmem_core::segment::AtomSegment;
use xmem_core::translate::{AttributeTranslator, CachePrimitive, PrefetcherPrimitive};
use xmem_core::xmemlib::{CallSite, XMemLib};

/// Pass-1 sink: records atom creation only (everything else is dropped).
#[derive(Debug, Default)]
pub struct ScanSink {
    atoms: Vec<(String, AtomAttributes)>,
    next_va: u64,
}

impl ScanSink {
    /// Creates an empty scan sink.
    pub fn new() -> Self {
        ScanSink {
            atoms: Vec::new(),
            next_va: 4096,
        }
    }

    /// The atom segment summarizing the scanned program.
    pub fn segment(&self) -> AtomSegment {
        let mut seg = AtomSegment::new();
        for (i, (label, attrs)) in self.atoms.iter().enumerate() {
            seg.push(StaticAtom::new(
                AtomId::new(i as u8),
                label.clone(),
                attrs.clone(),
            ));
        }
        seg
    }
}

impl TraceSink for ScanSink {
    fn op(&mut self, _op: Op) {}

    fn alloc(&mut self, bytes: u64, _atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        base
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|(l, _)| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push((label.to_owned(), attrs));
        id
    }

    fn map(&mut self, _atom: AtomId, _start: u64, _len: u64) {}
    fn unmap(&mut self, _start: u64, _len: u64) {}
    fn map_2d(&mut self, _atom: AtomId, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn unmap_2d(&mut self, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn activate(&mut self, _atom: AtomId) {}
    fn deactivate(&mut self, _atom: AtomId) {}
}

/// The memory side of the machine (everything the core's loads/stores see).
#[derive(Debug)]
struct MemSystem {
    hierarchy: Hierarchy,
    amu: AtomManagementUnit,
    cache_pat: Pat<CachePrimitive>,
    pf_pat: Pat<PrefetcherPrimitive>,
    os: Os,
    tlb: Option<Tlb>,
    xmem_enabled: bool,
    /// Small direct-mapped VPN→PFN translate cache over the OS page table
    /// (indexed by the VPN's low bits). Workloads alternate between a few
    /// data structures on different pages — gemm touches three arrays per
    /// inner iteration — so a single entry thrashes; [`TC_ENTRIES`] slots
    /// remove the page-table binary search from the hot path entirely. It
    /// is *exact* (never changes a translation): [`Machine::alloc`] — the
    /// only path that mutates the page table — invalidates it.
    tc_vpn: [u64; TC_ENTRIES],
    tc_pfn: [u64; TC_ENTRIES],
    /// `log2(page_size)`; translation caching assumes power-of-two pages.
    page_shift: u32,
    /// Recently-warmed lines, direct-mapped by line index (the warm-path
    /// filter); `u64::MAX` means "slot empty".
    warm_lines: [u64; WARM_FILTER_ENTRIES],
    /// Whether the matching `warm_lines` entry has been warmed by a store
    /// (so the line's dirty bit is already set).
    warm_dirty: [bool; WARM_FILTER_ENTRIES],
}

/// `log2` of the warm-filter line granularity. Matches the hierarchy's
/// 64 B lines; a coarser value would skip real state changes.
const WARM_LINE_SHIFT: u32 = 6;

/// Warm-filter slots (power of two; covers the handful of interleaved
/// streams a kernel's inner loop cycles through).
const WARM_FILTER_ENTRIES: usize = 256;

/// Translate-cache slots (power of two; covers the handful of distinct
/// pages a kernel's inner loop cycles through).
const TC_ENTRIES: usize = 16;

/// `tc_vpn` value meaning "translate cache entry empty".
const TC_EMPTY: u64 = u64::MAX;

impl MemSystem {
    /// Translates `va`, consulting the direct-mapped cache first.
    #[inline]
    fn translate(&mut self, va: u64) -> u64 {
        let vpn = va >> self.page_shift;
        let slot = addr_to_index(vpn & (TC_ENTRIES as u64 - 1));
        if vpn == self.tc_vpn[slot] {
            return (self.tc_pfn[slot] << self.page_shift) | (va & ((1 << self.page_shift) - 1));
        }
        let pa = self
            .os
            .page_table()
            .translate(VirtAddr::new(va))
            .unwrap_or_else(|| panic!("access to unallocated VA {va:#x}"))
            .raw();
        self.tc_vpn[slot] = vpn;
        self.tc_pfn[slot] = pa >> self.page_shift;
        pa
    }

    /// Drops any translate-cache entry covering `va`'s page. Must be
    /// called whenever the page table *rebinds* an existing VPN (page
    /// migration): the cache is direct-mapped by VPN, so only the one
    /// slot can be stale. Wholesale growth ([`Machine::alloc`]) wipes the
    /// whole array instead.
    #[inline]
    fn invalidate_translation(&mut self, va: u64) {
        let vpn = va >> self.page_shift;
        let slot = addr_to_index(vpn & (TC_ENTRIES as u64 - 1));
        if self.tc_vpn[slot] == vpn {
            self.tc_vpn[slot] = TC_EMPTY;
        }
        // The warm-path filter may cover lines of this page; after a
        // rebind their physical homes change, so force re-walks.
        self.warm_lines = [u64::MAX; WARM_FILTER_ENTRIES];
    }

    /// Functional warmup access: touches the TLB (LRU/residency), the
    /// translate cache, cache tags/LRU/pinning, ALB/AMU state, and DRAM
    /// open rows — but produces no latency and no core-visible timing.
    /// Used by the sampled machine's warm phase so detailed windows do not
    /// open on cold state.
    fn warm_access(&mut self, va: u64, is_write: bool) {
        // Recently-warmed-line filter: kernels touch each 64 B line several
        // times in short order (8 doubles per line, interleaved across a
        // few arrays), and a repeat access can only refresh LRU stamps that
        // are already near-freshest. A small direct-mapped filter over the
        // last lines warmed skips the full hierarchy walk for those
        // repeats, which is most of the functional-warming cost on
        // sequential streams. The approximation is bounded: only lines
        // warmed since the last filter wipe are skipped, and a store after
        // a clean access still walks, to set the dirty bit the first
        // access did not.
        let line = va >> WARM_LINE_SHIFT;
        let slot = addr_to_index(line & (WARM_FILTER_ENTRIES as u64 - 1));
        if self.warm_lines[slot] == line && (!is_write || self.warm_dirty[slot]) {
            return;
        }
        self.warm_lines[slot] = line;
        self.warm_dirty[slot] = is_write;
        if let Some(tlb) = self.tlb.as_mut() {
            let _ = tlb.translate_cost(VirtAddr::new(va));
        }
        let pa = self.translate(va);
        let ctx = self.xmem_enabled.then_some(XmemContext {
            amu: &mut self.amu,
            cache_pat: &self.cache_pat,
            pf_pat: &self.pf_pat,
        });
        self.hierarchy.warm_access(pa, is_write, ctx);
    }
}

impl MemoryPath for MemSystem {
    #[inline]
    fn serve(&mut self, va: u64, attrs: OpAttrs, now: u64) -> u64 {
        let walk = self
            .tlb
            .as_mut()
            .map(|t| t.translate_cost(VirtAddr::new(va)))
            .unwrap_or(0);
        let pa = self.translate(va);
        let ctx = self.xmem_enabled.then_some(XmemContext {
            amu: &mut self.amu,
            cache_pat: &self.cache_pat,
            pf_pat: &self.pf_pat,
        });
        walk + self.hierarchy.serve(pa, attrs.write, now + walk, ctx)
    }
}

/// Cumulative counter values captured at an epoch boundary. Each telemetry
/// sample reports the deltas between two consecutive snapshots, so rates
/// (IPC, MPKI, row-hit rate) describe *that epoch*, not the run so far.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    instructions: u64,
    cycles: u64,
    l1_misses: u64,
    l2_misses: u64,
    l3_misses: u64,
    prefetch_issued: u64,
    prefetch_useful: u64,
    row_hits: u64,
    dram_accesses: u64,
    busy_bank_cycles: u64,
    alb_hits: u64,
    alb_lookups: u64,
    amu_invalidations: u64,
}

/// Live telemetry state: the series under construction plus the snapshot
/// taken at the previous epoch boundary.
#[derive(Debug)]
struct TelemetryState {
    series: TelemetrySeries,
    prev: Snapshot,
}

/// Live sampling state: the schedule, the op/phase accounting, and the
/// per-window feature measurements.
///
/// Window metrics are deltas between the snapshot taken once the window's
/// detailed *ramp* has run (see below) and the snapshot at the window's
/// *close* (on the first non-detailed op), so warm-phase counter pollution
/// never enters a window's features. The run's raw cumulative counters, by
/// contrast, are a documented warm+detailed mixture under partial coverage
/// — the [`SamplingSummary`] metrics are the sampled estimates to read.
///
/// The ramp exists because the core's clock (`Core::now`) includes the
/// completion time of the latest outstanding miss: a window measured from
/// its very first detailed op opens with a drained pipeline (functional
/// warmup retires everything at the L1 latency) but closes mid-flight,
/// so the close-side overhang — up to a full DRAM latency — would bias
/// every window's cycle delta upward (the classic SMARTS end-of-window
/// drain bias). Running the first `window_ops / 2` detailed ops unmeasured
/// puts the clock's standing overhang in steady state before the open
/// snapshot — the ramp must span several DRAM latencies' worth of cycles,
/// which is why it scales with the window rather than the ROB — so the
/// in-flight overhang at open and close cancel to first order.
#[derive(Debug)]
struct SamplingState {
    spec: SamplingSpec,
    /// Global op index: how many sink ops the schedule has classified.
    ops_seen: u64,
    /// Ops executed through the detailed path.
    detailed_ops: u64,
    /// Ops executed through the functional-warmup path.
    warm_ops: u64,
    /// Detailed ops each window runs before the open snapshot is taken.
    ramp: u64,
    /// A detailed window is in progress (some detailed op has run since
    /// the last close).
    window_active: bool,
    /// Detailed ops executed in the current window so far.
    window_detailed: u64,
    /// Snapshot at the end of the current window's ramp, once taken.
    window_start: Option<Snapshot>,
    /// One feature vector per closed detailed window, in time order.
    windows: Vec<WindowFeatures>,
}

/// The executing machine (pass 2). Implements [`TraceSink`] so the workload
/// generator drives it directly.
#[derive(Debug)]
pub struct Machine {
    core: Core,
    mem: MemSystem,
    lib: XMemLib,
    labels: BTreeMap<String, AtomId>,
    next_site: u32,
    /// Instruction count at which the next telemetry sample fires.
    /// `u64::MAX` when telemetry is disabled, so the per-op cost of the
    /// feature is one always-false integer compare.
    next_sample_at: u64,
    telemetry: Option<TelemetryState>,
    /// Interval-sampling state; `None` (full detail everywhere) unless
    /// [`Machine::enable_sampling`] armed a schedule.
    sampling: Option<SamplingState>,
    /// Fixed latency warm-phase loads retire with (the L1 hit latency):
    /// cheap, deterministic, and close enough for functional warmup.
    warm_load_latency: u64,
}

/// Synthetic call-site file for atoms created through the sink interface.
const SINK_SITE_FILE: &str = "<workload>";

impl Machine {
    /// Builds the machine for `config`, loading `loaded` (the scanned
    /// program) into the OS/XMem tables.
    fn new(config: &SystemConfig, loaded: &LoadedProcess) -> Self {
        let policy = match config.frame_policy {
            FramePolicyKind::Sequential => FramePolicy::Sequential,
            FramePolicyKind::Randomized { seed } => FramePolicy::Randomized { seed },
            FramePolicyKind::XmemPlacement => FramePolicy::Xmem {
                atoms: loaded.placement.clone(),
                mapping: config.mapping,
                dram: config.dram,
            },
        };
        let os = Os::new(config.phys_bytes, 4096, policy);
        let dram = if config.ideal_rbl {
            Dram::new_ideal_rbl(config.dram, config.mapping)
        } else {
            Dram::new(config.dram, config.mapping)
        };
        let amu = AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: config.phys_bytes,
                ..AamConfig::default()
            },
            alb_entries: 256,
            page_size: 4096,
        });
        let xmem_enabled = config.hierarchy.xmem != cache_sim::XmemMode::Off;
        let mut cache_pat = Pat::new();
        let mut pf_pat = Pat::new();
        if xmem_enabled {
            let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
            cache_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_cache(a));
            pf_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_prefetcher(a));
        }
        Machine {
            core: Core::new(config.core),
            mem: MemSystem {
                hierarchy: Hierarchy::new(config.hierarchy, dram),
                amu,
                cache_pat,
                pf_pat,
                tlb: config.tlb.map(Tlb::new),
                xmem_enabled,
                tc_vpn: [TC_EMPTY; TC_ENTRIES],
                tc_pfn: [0; TC_ENTRIES],
                page_shift: os.page_table().page_size().trailing_zeros(),
                warm_lines: [u64::MAX; WARM_FILTER_ENTRIES],
                warm_dirty: [false; WARM_FILTER_ENTRIES],
                os,
            },
            lib: XMemLib::new(),
            labels: BTreeMap::new(),
            next_site: 0,
            next_sample_at: u64::MAX,
            telemetry: None,
            sampling: None,
            warm_load_latency: config.hierarchy.l1.latency,
        }
    }

    /// Turns on epoch sampling: one [`TelemetrySample`] per
    /// `epoch_instructions` retired (clamped to at least 1).
    fn enable_telemetry(&mut self, epoch_instructions: u64) {
        let series = TelemetrySeries::new(epoch_instructions);
        self.next_sample_at = series.epoch_instructions;
        self.telemetry = Some(TelemetryState {
            series,
            prev: Snapshot::default(),
        });
    }

    /// Arms interval sampling: ops execute per `spec`'s fast-forward /
    /// warmup / detailed schedule and every detailed window is measured.
    fn enable_sampling(&mut self, spec: SamplingSpec) {
        // Ramp < window_ops always (the /2 guarantees it), so every window
        // longer than 1 op measures something.
        let ramp = spec.window_ops / 2;
        self.sampling = Some(SamplingState {
            spec,
            ops_seen: 0,
            detailed_ops: 0,
            warm_ops: 0,
            ramp,
            window_active: false,
            window_detailed: 0,
            window_start: None,
            windows: Vec::new(),
        });
    }

    /// Marks a detailed window in progress and, once its ramp has run,
    /// snapshots the cumulative counters so the window's features are pure
    /// steady-state deltas. Idempotent within a window.
    fn open_window(&mut self) {
        let need_snap = match self.sampling.as_mut() {
            Some(st) => {
                st.window_active = true;
                st.window_start.is_none() && st.window_detailed >= st.ramp
            }
            None => false,
        };
        if need_snap {
            let snap = self.snapshot();
            if let Some(st) = self.sampling.as_mut() {
                st.window_start = Some(snap);
            }
        }
    }

    /// Closes the in-progress detailed window (no-op when none is),
    /// recording its feature vector if the ramp completed and a measured
    /// segment exists.
    fn close_window(&mut self) {
        let start = match self.sampling.as_mut() {
            Some(st) if st.window_active => {
                st.window_active = false;
                st.window_detailed = 0;
                st.window_start.take()
            }
            _ => return,
        };
        let Some(start) = start else {
            // The window ended inside its ramp: nothing measured.
            return;
        };
        let cur = self.snapshot();
        let features = WindowFeatures {
            instructions: cur.instructions - start.instructions,
            cycles: cur.cycles.saturating_sub(start.cycles),
            l1_misses: cur.l1_misses - start.l1_misses,
            l2_misses: cur.l2_misses - start.l2_misses,
            l3_misses: cur.l3_misses - start.l3_misses,
            dram_accesses: cur.dram_accesses - start.dram_accesses,
            row_hits: cur.row_hits - start.row_hits,
            alb_lookups: cur.alb_lookups - start.alb_lookups,
            alb_hits: cur.alb_hits - start.alb_hits,
        };
        // simlint: allow(nondet-taint, reason = "debug gate: the env var only toggles an eprintln window dump and never changes the report contents")
        if std::env::var("XMEM_DUMP_WINDOWS").is_ok() {
            eprintln!(
                "WINDOW instr={} cycles={} ipc={:.3} l1m={} l2m={} l3m={} dram={} rowhit={}",
                features.instructions,
                features.cycles,
                features.instructions as f64 / features.cycles.max(1) as f64,
                features.l1_misses,
                features.l2_misses,
                features.l3_misses,
                features.dram_accesses,
                features.row_hits
            );
        }
        // simlint: allow(unwrap, reason = "guarded by the window_active match above: sampling state is present")
        let st = self.sampling.as_mut().expect("sampling state present");
        st.windows.push(features);
    }

    /// Executes one op under the sampling schedule.
    fn sampled_op(&mut self, op: Op) {
        // simlint: allow(unwrap, reason = "only called from the sampled dispatch, which checked sampling.is_some()")
        let st = self.sampling.as_ref().expect("sampling state present");
        let spec = st.spec;
        let phase = spec.phase_of(st.ops_seen);
        let window_active = st.window_active;
        match phase {
            SamplePhase::Detailed => {
                self.open_window();
                self.core.step(op, &mut self.mem);
                if let Some(st) = self.sampling.as_mut() {
                    st.detailed_ops += 1;
                    st.window_detailed += 1;
                }
            }
            SamplePhase::Warm => {
                if window_active {
                    self.close_window();
                }
                match op {
                    Op::Load { addr, .. } => self.mem.warm_access(addr, false),
                    Op::Store { addr, .. } => self.mem.warm_access(addr, true),
                    Op::Compute(_) => {}
                }
                self.core.step_fixed(op, self.warm_load_latency);
                if let Some(st) = self.sampling.as_mut() {
                    st.warm_ops += 1;
                }
            }
            SamplePhase::FastForward => {
                if window_active {
                    self.close_window();
                }
                // Functional warming: caches, TLB, DRAM rows and AMU stats
                // stay live through the fast-forward, or every window would
                // open on partially-cold state and over-count misses
                // (cold-state bias dwarfs every other sampling error).
                // Only the core's timing is skipped.
                match op {
                    Op::Load { addr, .. } => self.mem.warm_access(addr, false),
                    Op::Store { addr, .. } => self.mem.warm_access(addr, true),
                    Op::Compute(_) => {}
                }
                self.core.skip(op);
            }
        }
        if let Some(st) = self.sampling.as_mut() {
            st.ops_seen += 1;
        }
        if self.core.instructions() >= self.next_sample_at {
            self.take_sample();
        }
    }

    /// Executes a whole batch under the sampling schedule, one tight loop
    /// per same-phase run (the schedule is deterministic in the op index,
    /// so run boundaries are known up front). Observably identical to
    /// calling [`Machine::sampled_op`] per op — same state mutations in
    /// the same order, same window snapshot boundaries — only the per-op
    /// phase/bookkeeping overhead is hoisted out of the loops. Callers
    /// must have telemetry disarmed (`next_sample_at == u64::MAX`); the
    /// per-op epoch boundary check is skipped here.
    fn sampled_batch(&mut self, batch: &OpBatch) {
        let len = batch.len();
        let mut i = 0usize;
        while i < len {
            // simlint: allow(unwrap, reason = "only called from the sampled dispatch, which checked sampling.is_some()")
            let st = self.sampling.as_ref().expect("sampling state present");
            let spec = st.spec;
            let pos = st.ops_seen;
            let window_active = st.window_active;
            let run = spec.phase_run(pos).min((len - i) as u64) as usize;
            match spec.phase_of(pos) {
                SamplePhase::Detailed => {
                    // Split the run at the ramp snapshot so batched windows
                    // measure exactly what scalar ones would.
                    let mut done = 0usize;
                    while done < run {
                        self.open_window();
                        // simlint: allow(unwrap, reason = "sampling state checked at loop entry; open_window does not clear it")
                        let st = self.sampling.as_ref().expect("sampling state present");
                        let sub = match st.window_start {
                            // open_window just declined to snapshot, so the
                            // ramp still has `ramp - window_detailed` ops
                            // to run before the next snapshot point.
                            None => ((st.ramp - st.window_detailed) as usize).min(run - done),
                            Some(_) => run - done,
                        };
                        let begin = i + done;
                        self.core
                            .step_batch_range(batch, begin, begin + sub, &mut self.mem);
                        // simlint: allow(unwrap, reason = "sampling state checked at loop entry; stepping ops does not clear it")
                        let st = self.sampling.as_mut().expect("sampling state present");
                        st.detailed_ops += sub as u64;
                        st.window_detailed += sub as u64;
                        st.ops_seen += sub as u64;
                        done += sub;
                    }
                }
                SamplePhase::Warm => {
                    if window_active {
                        self.close_window();
                    }
                    for j in i..i + run {
                        match batch.kind(j) {
                            OpKind::Load => self.mem.warm_access(batch.addr(j), false),
                            OpKind::Store => self.mem.warm_access(batch.addr(j), true),
                            OpKind::Compute => {}
                        }
                        self.core.step_fixed(batch.op(j), self.warm_load_latency);
                    }
                    // simlint: allow(unwrap, reason = "sampling state checked at loop entry; warming ops does not clear it")
                    let st = self.sampling.as_mut().expect("sampling state present");
                    st.warm_ops += run as u64;
                    st.ops_seen += run as u64;
                }
                SamplePhase::FastForward => {
                    if window_active {
                        self.close_window();
                    }
                    // Functional warming, as in `sampled_op`: memory state
                    // stays live through the fast-forward; only the core's
                    // timing is skipped. Loads/stores tally into one bulk
                    // skip (instant-retiring skips are order-free), so the
                    // loop's only per-op work is the warm access itself.
                    let mut loads = 0u64;
                    let mut stores = 0u64;
                    for j in i..i + run {
                        match batch.kind(j) {
                            OpKind::Load => {
                                self.mem.warm_access(batch.addr(j), false);
                                loads += 1;
                            }
                            OpKind::Store => {
                                self.mem.warm_access(batch.addr(j), true);
                                stores += 1;
                            }
                            OpKind::Compute => self.core.skip(batch.op(j)),
                        }
                    }
                    self.core.skip_bulk(loads, stores);
                    // simlint: allow(unwrap, reason = "sampling state checked at loop entry; skipping ops does not clear it")
                    let st = self.sampling.as_mut().expect("sampling state present");
                    st.ops_seen += run as u64;
                }
            }
            i += run;
        }
    }

    /// Migrates the page containing `va` to a fresh frame (see
    /// [`Os::migrate_page`]) and invalidates the machine's translate-cache
    /// entry for it, so the next access observes the new binding. The TLB
    /// needs no hook: it models walk *cost* only and stores no frame
    /// numbers, so a migration cannot make it wrong.
    pub fn migrate_page(&mut self, va: u64, atom: Option<AtomId>) -> Result<u64, OsError> {
        let pfn = self.mem.os.migrate_page(VirtAddr::new(va), atom)?;
        self.mem.invalidate_translation(va);
        Ok(pfn)
    }

    /// Captures the current cumulative counters across all layers.
    fn snapshot(&self) -> Snapshot {
        let core = self.core.stats();
        let dram = self.mem.hierarchy.dram_stats();
        let alb = self.mem.amu.alb_stats();
        let stride = self
            .mem
            .hierarchy
            .stride_prefetch_stats()
            .unwrap_or_default();
        let xmem_pf = self.mem.hierarchy.xmem_prefetch_stats();
        Snapshot {
            instructions: core.instructions,
            cycles: core.cycles,
            l1_misses: self.mem.hierarchy.l1_stats().misses(),
            l2_misses: self.mem.hierarchy.l2_stats().misses(),
            l3_misses: self.mem.hierarchy.l3_stats().misses(),
            prefetch_issued: stride.issued + xmem_pf.issued,
            prefetch_useful: stride.useful + xmem_pf.useful,
            row_hits: dram.row_hits,
            dram_accesses: dram.accesses(),
            busy_bank_cycles: self.mem.hierarchy.dram().busy_bank_cycles(),
            alb_hits: alb.hits,
            alb_lookups: alb.lookups(),
            amu_invalidations: self.mem.amu.alb_invalidations(),
        }
    }

    /// Closes the current epoch: records per-epoch deltas plus
    /// instantaneous gauges, then arms the next boundary.
    fn take_sample(&mut self) {
        let Some(prev) = self.telemetry.as_ref().map(|t| t.prev) else {
            // Not enabled — only reachable if `next_sample_at` was armed
            // without state; disarm so the per-op check stays cold.
            self.next_sample_at = u64::MAX;
            return;
        };
        let cur = self.snapshot();
        let d_instr = cur.instructions - prev.instructions;
        let d_cycles = cur.cycles.saturating_sub(prev.cycles);
        let ratio = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let per_kilo = |n: u64| ratio(n, d_instr) * 1000.0;
        let now = self.core.now();
        let dram = self.mem.hierarchy.dram();
        let total_banks = dram.config().total_banks() as u64;
        let sample = TelemetrySample {
            instructions: cur.instructions,
            cycles: cur.cycles,
            ipc: ratio(d_instr, d_cycles),
            rob_load_occupancy: self.core.rob_load_occupancy() as u64,
            outstanding_loads: self.core.outstanding_loads() as u64,
            l1_mpki: per_kilo(cur.l1_misses - prev.l1_misses),
            l2_mpki: per_kilo(cur.l2_misses - prev.l2_misses),
            l3_mpki: per_kilo(cur.l3_misses - prev.l3_misses),
            l2_psel: self.mem.hierarchy.l2_psel() as f64,
            l3_psel: self.mem.hierarchy.l3_psel() as f64,
            prefetch_issued: cur.prefetch_issued - prev.prefetch_issued,
            prefetch_useful: cur.prefetch_useful - prev.prefetch_useful,
            row_hit_rate: ratio(
                cur.row_hits - prev.row_hits,
                cur.dram_accesses - prev.dram_accesses,
            ),
            bank_busy_fraction: ratio(
                cur.busy_bank_cycles - prev.busy_bank_cycles,
                d_cycles * total_banks,
            ),
            queue_depth: dram.queued_requests(now) as f64,
            alb_hit_rate: ratio(
                cur.alb_hits - prev.alb_hits,
                cur.alb_lookups - prev.alb_lookups,
            ),
            amu_invalidations: cur.amu_invalidations - prev.amu_invalidations,
        };
        // simlint: allow(unwrap, reason = "sample() is only called when next_sample_at is armed, which implies telemetry state")
        let state = self.telemetry.as_mut().expect("telemetry state present");
        let epoch = state.series.epoch_instructions;
        state.series.samples.push(sample);
        state.prev = cur;
        self.next_sample_at = (cur.instructions / epoch + 1) * epoch;
    }

    /// Final statistics plus the sampled telemetry series (when enabled).
    /// Flushes the trailing partial epoch first, so the series always
    /// covers the whole run.
    fn report_with_telemetry(mut self) -> (RunReport, Option<TelemetrySeries>) {
        if let Some(state) = &self.telemetry {
            if self.core.instructions() > state.prev.instructions {
                self.take_sample();
            }
        }
        let series = self.telemetry.take().map(|t| t.series);
        (self.report(), series)
    }

    /// Everything the run produced: report, telemetry series, and (for
    /// sampled runs) the sampling summary. Closes any detailed window
    /// still open at generator end (a run ending mid-window is measured,
    /// not dropped).
    fn finish(mut self) -> RunOutput {
        self.close_window();
        let sampling = self.sampling.take().map(|st| {
            SamplingSummary::from_windows(
                st.spec,
                st.ops_seen,
                st.detailed_ops,
                st.warm_ops,
                &st.windows,
            )
        });
        let (report, telemetry) = self.report_with_telemetry();
        RunOutput {
            report,
            telemetry,
            sampling,
        }
    }

    /// Final statistics for the run.
    fn report(mut self) -> RunReport {
        let core = self.core.stats();
        self.lib.counter_mut().count_program(core.instructions);
        RunReport {
            core,
            l1: self.mem.hierarchy.l1_stats(),
            l2: self.mem.hierarchy.l2_stats(),
            l3: self.mem.hierarchy.l3_stats(),
            dram: self.mem.hierarchy.dram_stats(),
            alb: self.mem.amu.alb_stats(),
            xmem_instructions: self.lib.counter().xmem_instructions(),
            instruction_overhead: self.lib.counter().overhead_fraction(),
            xmem_prefetch: self.mem.hierarchy.xmem_prefetch_stats(),
            stride_prefetch: self.mem.hierarchy.stride_prefetch_stats(),
        }
    }
}

impl TraceSink for Machine {
    fn op(&mut self, op: Op) {
        if self.sampling.is_some() {
            self.sampled_op(op);
            return;
        }
        self.core.step(op, &mut self.mem);
        if self.core.instructions() >= self.next_sample_at {
            self.take_sample();
        }
    }

    fn op_batch(&mut self, batch: &OpBatch) {
        if self.sampling.is_some() {
            if self.next_sample_at == u64::MAX {
                // Telemetry disarmed: run the batched sampled dispatch. An
                // all-detailed batch degenerates to a single
                // `step_batch_range` over the whole buffer (plus at most one
                // ramp-snapshot split), which is why a 100%-coverage spec
                // stays byte-identical to an unsampled run.
                self.sampled_batch(batch);
            } else {
                for i in 0..batch.len() {
                    self.sampled_op(batch.op(i));
                }
            }
            return;
        }
        if self.next_sample_at == u64::MAX {
            // Telemetry disarmed: the per-op boundary check is always
            // false, so the tight batch loop is observably identical.
            self.core.step_batch(batch, &mut self.mem);
        } else {
            for i in 0..batch.len() {
                self.core.step(batch.op(i), &mut self.mem);
                if self.core.instructions() >= self.next_sample_at {
                    self.take_sample();
                }
            }
        }
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        // The page table is about to grow: drop the translate cache.
        self.mem.tc_vpn = [TC_EMPTY; TC_ENTRIES];
        self.mem
            .os
            .malloc(bytes, atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("simulated physical memory exhausted")
            .raw()
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(&id) = self.labels.get(label) {
            return id;
        }
        let site = CallSite {
            file: SINK_SITE_FILE,
            line: self.next_site,
        };
        self.next_site += 1;
        let id = self
            .lib
            .create_atom(site, label, attrs)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("atom limit exceeded");
        self.labels.insert(label.to_owned(), id);
        id
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(start),
                len,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_MAP failed");
    }

    fn unmap(&mut self, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(start),
                len,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_UNMAP failed");
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_MAP2D failed");
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_UNMAP2D failed");
    }

    fn activate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_activate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_ACTIVATE failed");
    }

    fn deactivate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_deactivate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_DEACTIVATE failed");
    }
}

/// Runs `generate` on a machine configured by `config`, returning run
/// statistics. Deterministic: identical inputs give identical reports.
///
/// # Examples
///
/// ```
/// use xmem_sim::{run_workload, SystemConfig, SystemKind};
/// use workloads::polybench::{KernelParams, PolybenchKernel};
///
/// let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
/// let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
/// let report = run_workload(&cfg, |sink| PolybenchKernel::Gemm.generate(&p, sink));
/// assert!(report.core.cycles > 0);
/// ```
pub fn run_workload(config: &SystemConfig, generate: impl Fn(&mut dyn TraceSink)) -> RunReport {
    run_workload_with_telemetry(config, None, generate).0
}

/// Like [`run_workload`], additionally sampling a [`TelemetrySeries`] every
/// `epoch_instructions` retired instructions when `Some`. Telemetry is
/// observational only: the returned [`RunReport`] is identical whether or
/// not sampling is enabled, and a disabled run costs one integer compare
/// per op.
///
/// # Examples
///
/// ```
/// use xmem_sim::{run_workload_with_telemetry, SystemConfig, SystemKind};
/// use workloads::polybench::{KernelParams, PolybenchKernel};
///
/// let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
/// let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
/// let (report, series) = run_workload_with_telemetry(&cfg, Some(1_000), |sink| {
///     PolybenchKernel::Gemm.generate(&p, sink)
/// });
/// let series = series.expect("telemetry was enabled");
/// assert_eq!(
///     series.samples.last().map(|s| s.instructions),
///     Some(report.core.instructions)
/// );
/// ```
pub fn run_workload_with_telemetry(
    config: &SystemConfig,
    epoch_instructions: Option<u64>,
    generate: impl Fn(&mut dyn TraceSink),
) -> (RunReport, Option<TelemetrySeries>) {
    run_generator(config, epoch_instructions, &ClosureGen(generate))
}

/// A workload generator the two-pass runner can replay into any sink type.
///
/// The generic method is the point: implementors written against a concrete
/// `S` monomorphize, so the executing pass inlines generator → batch
/// emitter → machine with no per-op virtual dispatch. `dyn TraceSink` still
/// satisfies `S` (it is `?Sized`), which is how the closure-based
/// [`run_workload`] entry points reuse the same flow.
pub trait Generator {
    /// Replays the workload into `sink`. Must be deterministic: the runner
    /// calls this twice (scan pass, then execute pass) and the two replays
    /// must emit the same trace.
    fn emit<S: TraceSink + ?Sized>(&self, sink: &mut S);
}

/// Adapts a `Fn(&mut dyn TraceSink)` closure to [`Generator`] for the
/// dyn-dispatch entry points ([`run_workload`] and friends).
struct ClosureGen<F: Fn(&mut dyn TraceSink)>(F);

impl<F: Fn(&mut dyn TraceSink)> Generator for ClosureGen<F> {
    fn emit<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        // `S` may itself be unsized, so it can't coerce to `dyn TraceSink`
        // directly; the Sized forwarder below can.
        (self.0)(&mut ForwardSink(sink));
    }
}

/// Sized shim forwarding every [`TraceSink`] method to a possibly-unsized
/// inner sink, so `&mut S` can be handed to a `&mut dyn TraceSink` closure.
struct ForwardSink<'a, S: TraceSink + ?Sized>(&'a mut S);

impl<S: TraceSink + ?Sized> TraceSink for ForwardSink<'_, S> {
    fn op(&mut self, op: Op) {
        self.0.op(op);
    }
    fn op_batch(&mut self, batch: &OpBatch) {
        self.0.op_batch(batch);
    }
    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.0.alloc(bytes, atom)
    }
    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        self.0.create_atom(label, attrs)
    }
    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.0.map(atom, start, len);
    }
    fn unmap(&mut self, start: u64, len: u64) {
        self.0.unmap(start, len);
    }
    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.0.map_2d(atom, base, size_x, size_y, len_x);
    }
    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.0.unmap_2d(base, size_x, size_y, len_x);
    }
    fn activate(&mut self, atom: AtomId) {
        self.0.activate(atom);
    }
    fn deactivate(&mut self, atom: AtomId) {
        self.0.deactivate(atom);
    }
}

/// Everything one simulated run produced.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// Final cumulative statistics. Under partial-coverage sampling these
    /// are a warm+detailed mixture — read the sampled estimates from
    /// [`RunOutput::sampling`] instead.
    pub report: RunReport,
    /// Epoch-sampled telemetry series, when enabled.
    pub telemetry: Option<TelemetrySeries>,
    /// Interval-sampling summary, when a [`SamplingSpec`] was set.
    pub sampling: Option<SamplingSummary>,
}

/// Runs the two-pass simulation for a [`Generator`], monomorphized over the
/// concrete sink type of each pass. [`RunSpec::execute`] routes here, so
/// sweep runs pay zero per-op virtual dispatch on the generation side.
///
/// [`RunSpec::execute`]: crate::harness::RunSpec::execute
pub fn run_generator<G: Generator>(
    config: &SystemConfig,
    epoch_instructions: Option<u64>,
    generator: &G,
) -> (RunReport, Option<TelemetrySeries>) {
    let out = run_generator_sampled(config, epoch_instructions, None, generator);
    (out.report, out.telemetry)
}

/// Like [`run_generator`], additionally executing under an interval
/// [`SamplingSpec`] when one is given. `None` runs fully detailed; a
/// 100%-coverage spec ([`SamplingSpec::full_coverage`]) produces a report
/// byte-identical to `None` (the byte-identity suite pins this).
pub fn run_generator_sampled<G: Generator>(
    config: &SystemConfig,
    epoch_instructions: Option<u64>,
    sampling: Option<SamplingSpec>,
    generator: &G,
) -> RunOutput {
    // Pass 1: compile-time summarization.
    let mut scan = ScanSink::new();
    generator.emit(&mut scan);
    let segment = scan.segment();
    // Load time: GAT + translator + PATs + placement primitives.
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    // Execution: generators emit per-op; the BatchEmitter buffers ops into
    // OpBatches and the machine executes them through the batched path.
    let mut machine = Machine::new(config, &loaded);
    if let Some(epoch) = epoch_instructions {
        machine.enable_telemetry(epoch);
    }
    if let Some(spec) = sampling {
        machine.enable_sampling(spec);
    }
    {
        let mut emitter = BatchEmitter::new(&mut machine);
        generator.emit(&mut emitter);
        // Explicit tail flush: drop-without-flush is a debug assertion on
        // the emitter, so the trailing partial batch is always accounted.
        emitter.flush();
    }
    machine.finish()
}

/// Scalar reference arm for the byte-identity suite: identical to
/// [`run_workload`] except the generator drives the machine one op at a
/// time — no [`BatchEmitter`], the pre-batching execution shape. Exists so
/// tests can prove the batched path changes nothing; not part of the
/// supported API.
#[doc(hidden)]
pub fn run_workload_scalar(
    config: &SystemConfig,
    generate: impl Fn(&mut dyn TraceSink),
) -> RunReport {
    let mut scan = ScanSink::new();
    generate(&mut scan);
    let segment = scan.segment();
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    let mut machine = Machine::new(config, &loaded);
    generate(&mut machine);
    machine.report()
}

/// Scalar reference arm for *sampled* execution: identical to
/// [`run_generator_sampled`] (without telemetry) except the generator
/// drives the machine one op at a time, so every op takes the scalar
/// [`Machine::sampled_op`] dispatch. Exists so tests can prove the
/// batched sampled dispatch — phase-run loops, bulk skip accounting,
/// ramp-split snapshots — changes nothing; not part of the supported API.
#[doc(hidden)]
pub fn run_workload_sampled_scalar(
    config: &SystemConfig,
    spec: SamplingSpec,
    generate: impl Fn(&mut dyn TraceSink),
) -> RunOutput {
    let mut scan = ScanSink::new();
    generate(&mut scan);
    let segment = scan.segment();
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; test-only reference arm")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    let mut machine = Machine::new(config, &loaded);
    machine.enable_sampling(spec);
    generate(&mut machine);
    machine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use workloads::polybench::{KernelParams, PolybenchKernel};

    fn params() -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: 2048,
            steps: 2,
            reuse: 200,
        }
    }

    #[test]
    fn baseline_and_xmem_run_same_work() {
        let p = params();
        let base = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        let xmem = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        assert_eq!(base.core.instructions, xmem.core.instructions);
        assert_eq!(base.core.loads, xmem.core.loads);
        assert_eq!(base.xmem_instructions, 0);
        assert!(xmem.xmem_instructions > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let a = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        let b = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        assert_eq!(a.core, b.core);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn alb_sees_traffic_with_xmem() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(r.alb.lookups() > 0);
        assert!(r.alb.hit_rate() > 0.5, "ALB hit rate {}", r.alb.hit_rate());
    }

    #[test]
    fn tlb_adds_walk_cost_but_preserves_work() {
        let p = params();
        let base_cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let tlb_cfg = base_cfg.with_tlb();
        let without = run_workload(&base_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        let with = run_workload(&tlb_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(without.core.instructions, with.core.instructions);
        assert!(
            with.core.cycles > without.core.cycles,
            "page walks must cost time: {} vs {}",
            with.core.cycles,
            without.core.cycles
        );
        // Small footprint → high TLB hit rate → bounded overhead.
        assert!((with.core.cycles as f64) < without.core.cycles as f64 * 1.5);
    }

    #[test]
    fn telemetry_does_not_perturb_the_run() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let plain = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        let (sampled, series) =
            run_workload_with_telemetry(&cfg, Some(500), |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(plain, sampled, "sampling must be observational only");
        assert!(series.is_some());
        let (unsampled, none) =
            run_workload_with_telemetry(&cfg, None, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(plain, unsampled);
        assert!(none.is_none());
    }

    #[test]
    fn telemetry_covers_the_whole_run_in_epoch_order() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let epoch = 1_000;
        let (report, series) = run_workload_with_telemetry(&cfg, Some(epoch), |s| {
            PolybenchKernel::Gemm.generate(&p, s)
        });
        let series = series.expect("telemetry enabled");
        assert_eq!(series.epoch_instructions, epoch);
        assert!(
            series.samples.len() as u64 >= report.core.instructions / epoch,
            "one sample per epoch at minimum: {} samples for {} instructions",
            series.samples.len(),
            report.core.instructions
        );
        // The final (possibly partial) epoch is flushed at report time.
        assert_eq!(
            series.samples.last().map(|s| s.instructions),
            Some(report.core.instructions)
        );
        for pair in series.samples.windows(2) {
            assert!(pair[0].instructions < pair[1].instructions);
            assert!(pair[0].cycles <= pair[1].cycles);
        }
        // Epochs with work in them report sane rates.
        let first = &series.samples[0];
        assert!(first.ipc > 0.0 && first.ipc <= cfg.core.issue_width as f64);
        assert!(first.l1_mpki >= 0.0);
        // Each sample closes a distinct epoch. A multi-instruction op can
        // overshoot the boundary slightly, but never by a full epoch, and
        // two samples never land in the same epoch.
        for (i, s) in series.samples.iter().enumerate() {
            assert!(s.instructions > i as u64 * epoch, "sample {i}: {s:?}");
        }
        for pair in series.samples.windows(2) {
            assert!(
                pair[0].instructions / epoch < pair[1].instructions.div_ceil(epoch),
                "samples share an epoch: {pair:?}"
            );
        }
    }

    #[test]
    fn telemetry_sees_xmem_activity() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Xmem);
        let (report, series) = run_workload_with_telemetry(&cfg, Some(2_000), |s| {
            PolybenchKernel::Gemm.generate(&p, s)
        });
        let series = series.expect("telemetry enabled");
        let sampled_lookup_hits: f64 = series.samples.iter().map(|s| s.alb_hit_rate).sum();
        assert!(
            sampled_lookup_hits > 0.0,
            "ALB activity must appear in the series"
        );
        assert!(report.alb.lookups() > 0);
    }

    /// A bare machine over an empty program, for tests that drive the
    /// sink interface directly.
    fn bare_machine(cfg: &SystemConfig) -> Machine {
        let scan = ScanSink::new();
        let segment = scan.segment();
        let translator = AttributeTranslator::with_row_bytes(cfg.dram.row_bytes);
        let loaded =
            load_segment(ProcessId(0), &segment, &translator).expect("empty program loads");
        Machine::new(cfg, &loaded)
    }

    #[test]
    fn translate_cache_invalidated_on_page_migration() {
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let mut m = bare_machine(&cfg);
        let va = m.alloc(4096, None);
        // Make the page's translate-cache entry hot.
        m.op(Op::load(va + 8));
        let old_pa = m.mem.translate(va + 8);
        let new_pfn = m.migrate_page(va, None).expect("mapped page migrates");
        // The regression: before the invalidation hook, the stale cached
        // PFN survived the remap and this still returned `old_pa`.
        let new_pa = m.mem.translate(va + 8);
        assert_ne!(new_pa, old_pa, "stale translation served after migration");
        assert_eq!(new_pa, (new_pfn << 12) | 8, "offset preserved in new frame");
        // Accesses keep flowing through the migrated page.
        m.op(Op::load(va + 64));
        m.op(Op::store(va + 128));
        assert!(m.core.stats().loads == 2 && m.core.stats().stores == 1);
    }

    #[test]
    fn migrating_an_unmapped_page_is_an_error() {
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let mut m = bare_machine(&cfg);
        assert_eq!(m.migrate_page(0x7000_0000, None), Err(OsError::NotMapped));
    }

    #[test]
    fn final_epoch_on_exact_boundary_emits_no_degenerate_sample() {
        // 1000 single-instruction compute ops with epoch 500: the run ends
        // exactly on an epoch boundary, so the second sample *is* the final
        // epoch — no empty trailing flush, no zero-delta division.
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let (report, series) = run_workload_with_telemetry(&cfg, Some(500), |s| {
            for _ in 0..1000 {
                s.compute(1);
            }
        });
        assert_eq!(report.core.instructions, 1000);
        let series = series.expect("telemetry enabled");
        assert_eq!(
            series.samples.len(),
            2,
            "one sample per epoch, nothing extra"
        );
        let last = &series.samples[1];
        assert_eq!(last.instructions, 1000);
        assert!(last.ipc.is_finite() && last.ipc > 0.0);
        for s in &series.samples {
            for v in [
                s.ipc,
                s.l1_mpki,
                s.l2_mpki,
                s.l3_mpki,
                s.row_hit_rate,
                s.alb_hit_rate,
                s.bank_busy_fraction,
                s.queue_depth,
            ] {
                assert!(v.is_finite(), "rate field must stay finite: {s:?}");
            }
            // A compute-only run has zero activations/lookups: the rate
            // guards must pin these to exactly 0, never NaN.
            assert!(s.row_hit_rate.abs() < 1e-12, "{s:?}");
            assert!(s.alb_hit_rate.abs() < 1e-12, "{s:?}");
            assert!(s.l1_mpki.abs() < 1e-12, "{s:?}");
        }
    }

    #[test]
    fn zero_cycle_epoch_reports_zero_ipc_not_nan() {
        // Epoch of 1 instruction with a wide issue core: several epochs
        // close within the same cycle, so their cycle delta is zero and
        // the IPC guard must return 0.0 rather than dividing.
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let (_, series) = run_workload_with_telemetry(&cfg, Some(1), |s| {
            for _ in 0..8 {
                s.compute(1);
            }
        });
        let series = series.expect("telemetry enabled");
        assert!(series.samples.len() >= 4);
        assert!(series.samples.iter().all(|s| s.ipc.is_finite()));
        assert!(
            series.samples.iter().any(|s| s.ipc.abs() < 1e-12),
            "a zero-cycle epoch must hit the guard: {:?}",
            series.samples
        );
    }

    #[test]
    fn full_coverage_sampling_is_byte_identical_to_full_execution() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let generator = ClosureGen(|s: &mut dyn TraceSink| PolybenchKernel::Gemm.generate(&p, s));
        let (plain, _) = run_generator(&cfg, None, &generator);
        let sampled = run_generator_sampled(
            &cfg,
            None,
            Some(crate::sampling::SamplingSpec::full_coverage()),
            &generator,
        );
        assert_eq!(plain, sampled.report, "100% coverage must change nothing");
        let summary = sampled.sampling.expect("sampled run carries a summary");
        assert_eq!(summary.detailed_ops, summary.total_ops);
        assert_eq!(summary.warm_ops, 0);
        assert!(summary.total_ops > 0);
        assert!((summary.coverage - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_sampling_is_deterministic_and_tracks_the_full_run() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let generator = ClosureGen(|s: &mut dyn TraceSink| PolybenchKernel::Gemm.generate(&p, s));
        // The measured half of each window (window/2, after the ramp) must
        // span several DRAM latencies of cycles for the open/close overhang
        // to cancel, so the windows here are deliberately sizeable.
        let spec = SamplingSpec {
            warmup_ops: 1_000,
            window_ops: 4_000,
            interval: 20_000,
        };
        let out = run_generator_sampled(&cfg, None, Some(spec), &generator);
        let again = run_generator_sampled(&cfg, None, Some(spec), &generator);
        assert_eq!(out.report, again.report, "sampled runs are deterministic");
        assert_eq!(out.sampling, again.sampling);
        let summary = out.sampling.expect("summary present");
        assert!(
            summary.windows > 0,
            "the run is long enough to open windows"
        );
        assert!(summary.detailed_ops < summary.total_ops);
        assert!(summary.coverage < 0.5);
        assert_eq!(summary.spec, spec);
        assert!(!summary.clusters.is_empty());
        // The sampled IPC estimate lands near the full run's IPC.
        let (full, _) = run_generator(&cfg, None, &generator);
        let full_ipc = full.core.instructions as f64 / full.core.cycles as f64;
        let est = summary.metric("ipc").expect("ipc metric present");
        assert!(est.mean > 0.0 && est.min <= est.mean && est.mean <= est.max);
        let err = (est.mean - full_ipc).abs() / full_ipc;
        assert!(
            err < 0.25,
            "sampled IPC {} vs full {full_ipc} (err {err})",
            est.mean
        );
    }

    #[test]
    fn instruction_overhead_is_tiny() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(
            r.instruction_overhead < 0.005,
            "overhead {}",
            r.instruction_overhead
        );
    }
}
