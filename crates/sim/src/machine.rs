//! The full-system machine: core + hierarchy + DRAM + OS + XMem, driven by
//! a workload generator through the [`TraceSink`] interface.
//!
//! A run has two passes, mirroring the paper's compile/load/execute flow:
//!
//! 1. **Scan** ([`ScanSink`]): the workload's `CreateAtom` calls are
//!    collected — this is the *compiler summarization* that produces the
//!    binary's atom segment (§3.5.2).
//! 2. **Load + execute** ([`Machine`]): the OS loads the segment into the
//!    GAT, the attribute translator fills each component's PAT, the frame
//!    policy is constructed (for XMem placement, from the atoms' placement
//!    primitives), and then the trace runs for real — ops through the core
//!    model, XMem calls through `XMemLib` into the AMU.

use crate::config::{FramePolicyKind, SystemConfig};
use crate::report::RunReport;
use crate::telemetry::{TelemetrySample, TelemetrySeries};
use cache_sim::hierarchy::{Hierarchy, XmemContext};
use cpu_sim::batch::{MemoryPath, OpAttrs, OpBatch};
use cpu_sim::core::Core;
use cpu_sim::trace::Op;
use dram_sim::Dram;
use os_sim::loader::{load_segment, LoadedProcess};
use os_sim::os::Os;
use os_sim::placement::FramePolicy;
use os_sim::tlb::Tlb;
use std::collections::BTreeMap;
use workloads::sink::{BatchEmitter, TraceSink};
use xmem_core::aam::AamConfig;
use xmem_core::addr::{addr_to_index, VirtAddr};
use xmem_core::amu::{AmuConfig, AtomManagementUnit, Mmu};
use xmem_core::atom::{AtomId, StaticAtom};
use xmem_core::attrs::AtomAttributes;
use xmem_core::pat::Pat;
use xmem_core::process::ProcessId;
use xmem_core::segment::AtomSegment;
use xmem_core::translate::{AttributeTranslator, CachePrimitive, PrefetcherPrimitive};
use xmem_core::xmemlib::{CallSite, XMemLib};

/// Pass-1 sink: records atom creation only (everything else is dropped).
#[derive(Debug, Default)]
pub struct ScanSink {
    atoms: Vec<(String, AtomAttributes)>,
    next_va: u64,
}

impl ScanSink {
    /// Creates an empty scan sink.
    pub fn new() -> Self {
        ScanSink {
            atoms: Vec::new(),
            next_va: 4096,
        }
    }

    /// The atom segment summarizing the scanned program.
    pub fn segment(&self) -> AtomSegment {
        let mut seg = AtomSegment::new();
        for (i, (label, attrs)) in self.atoms.iter().enumerate() {
            seg.push(StaticAtom::new(
                AtomId::new(i as u8),
                label.clone(),
                attrs.clone(),
            ));
        }
        seg
    }
}

impl TraceSink for ScanSink {
    fn op(&mut self, _op: Op) {}

    fn alloc(&mut self, bytes: u64, _atom: Option<AtomId>) -> u64 {
        let base = self.next_va;
        self.next_va += bytes.next_multiple_of(4096).max(4096);
        base
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(i) = self.atoms.iter().position(|(l, _)| l == label) {
            return AtomId::new(i as u8);
        }
        let id = AtomId::new(self.atoms.len() as u8);
        self.atoms.push((label.to_owned(), attrs));
        id
    }

    fn map(&mut self, _atom: AtomId, _start: u64, _len: u64) {}
    fn unmap(&mut self, _start: u64, _len: u64) {}
    fn map_2d(&mut self, _atom: AtomId, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn unmap_2d(&mut self, _base: u64, _sx: u64, _sy: u64, _lx: u64) {}
    fn activate(&mut self, _atom: AtomId) {}
    fn deactivate(&mut self, _atom: AtomId) {}
}

/// The memory side of the machine (everything the core's loads/stores see).
#[derive(Debug)]
struct MemSystem {
    hierarchy: Hierarchy,
    amu: AtomManagementUnit,
    cache_pat: Pat<CachePrimitive>,
    pf_pat: Pat<PrefetcherPrimitive>,
    os: Os,
    tlb: Option<Tlb>,
    xmem_enabled: bool,
    /// Small direct-mapped VPN→PFN translate cache over the OS page table
    /// (indexed by the VPN's low bits). Workloads alternate between a few
    /// data structures on different pages — gemm touches three arrays per
    /// inner iteration — so a single entry thrashes; [`TC_ENTRIES`] slots
    /// remove the page-table binary search from the hot path entirely. It
    /// is *exact* (never changes a translation): [`Machine::alloc`] — the
    /// only path that mutates the page table — invalidates it.
    tc_vpn: [u64; TC_ENTRIES],
    tc_pfn: [u64; TC_ENTRIES],
    /// `log2(page_size)`; translation caching assumes power-of-two pages.
    page_shift: u32,
}

/// Translate-cache slots (power of two; covers the handful of distinct
/// pages a kernel's inner loop cycles through).
const TC_ENTRIES: usize = 16;

/// `tc_vpn` value meaning "translate cache entry empty".
const TC_EMPTY: u64 = u64::MAX;

impl MemSystem {
    /// Translates `va`, consulting the direct-mapped cache first.
    #[inline]
    fn translate(&mut self, va: u64) -> u64 {
        let vpn = va >> self.page_shift;
        let slot = addr_to_index(vpn & (TC_ENTRIES as u64 - 1));
        if vpn == self.tc_vpn[slot] {
            return (self.tc_pfn[slot] << self.page_shift) | (va & ((1 << self.page_shift) - 1));
        }
        let pa = self
            .os
            .page_table()
            .translate(VirtAddr::new(va))
            .unwrap_or_else(|| panic!("access to unallocated VA {va:#x}"))
            .raw();
        self.tc_vpn[slot] = vpn;
        self.tc_pfn[slot] = pa >> self.page_shift;
        pa
    }
}

impl MemoryPath for MemSystem {
    #[inline]
    fn serve(&mut self, va: u64, attrs: OpAttrs, now: u64) -> u64 {
        let walk = self
            .tlb
            .as_mut()
            .map(|t| t.translate_cost(VirtAddr::new(va)))
            .unwrap_or(0);
        let pa = self.translate(va);
        let ctx = self.xmem_enabled.then_some(XmemContext {
            amu: &mut self.amu,
            cache_pat: &self.cache_pat,
            pf_pat: &self.pf_pat,
        });
        walk + self.hierarchy.serve(pa, attrs.write, now + walk, ctx)
    }
}

/// Cumulative counter values captured at an epoch boundary. Each telemetry
/// sample reports the deltas between two consecutive snapshots, so rates
/// (IPC, MPKI, row-hit rate) describe *that epoch*, not the run so far.
#[derive(Debug, Clone, Copy, Default)]
struct Snapshot {
    instructions: u64,
    cycles: u64,
    l1_misses: u64,
    l2_misses: u64,
    l3_misses: u64,
    prefetch_issued: u64,
    prefetch_useful: u64,
    row_hits: u64,
    dram_accesses: u64,
    busy_bank_cycles: u64,
    alb_hits: u64,
    alb_lookups: u64,
    amu_invalidations: u64,
}

/// Live telemetry state: the series under construction plus the snapshot
/// taken at the previous epoch boundary.
#[derive(Debug)]
struct TelemetryState {
    series: TelemetrySeries,
    prev: Snapshot,
}

/// The executing machine (pass 2). Implements [`TraceSink`] so the workload
/// generator drives it directly.
#[derive(Debug)]
pub struct Machine {
    core: Core,
    mem: MemSystem,
    lib: XMemLib,
    labels: BTreeMap<String, AtomId>,
    next_site: u32,
    /// Instruction count at which the next telemetry sample fires.
    /// `u64::MAX` when telemetry is disabled, so the per-op cost of the
    /// feature is one always-false integer compare.
    next_sample_at: u64,
    telemetry: Option<TelemetryState>,
}

/// Synthetic call-site file for atoms created through the sink interface.
const SINK_SITE_FILE: &str = "<workload>";

impl Machine {
    /// Builds the machine for `config`, loading `loaded` (the scanned
    /// program) into the OS/XMem tables.
    fn new(config: &SystemConfig, loaded: &LoadedProcess) -> Self {
        let policy = match config.frame_policy {
            FramePolicyKind::Sequential => FramePolicy::Sequential,
            FramePolicyKind::Randomized { seed } => FramePolicy::Randomized { seed },
            FramePolicyKind::XmemPlacement => FramePolicy::Xmem {
                atoms: loaded.placement.clone(),
                mapping: config.mapping,
                dram: config.dram,
            },
        };
        let os = Os::new(config.phys_bytes, 4096, policy);
        let dram = if config.ideal_rbl {
            Dram::new_ideal_rbl(config.dram, config.mapping)
        } else {
            Dram::new(config.dram, config.mapping)
        };
        let amu = AtomManagementUnit::new(AmuConfig {
            aam: AamConfig {
                phys_bytes: config.phys_bytes,
                ..AamConfig::default()
            },
            alb_entries: 256,
            page_size: 4096,
        });
        let xmem_enabled = config.hierarchy.xmem != cache_sim::XmemMode::Off;
        let mut cache_pat = Pat::new();
        let mut pf_pat = Pat::new();
        if xmem_enabled {
            let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
            cache_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_cache(a));
            pf_pat.fill_from_gat(&loaded.process.gat, |a| translator.for_prefetcher(a));
        }
        Machine {
            core: Core::new(config.core),
            mem: MemSystem {
                hierarchy: Hierarchy::new(config.hierarchy, dram),
                amu,
                cache_pat,
                pf_pat,
                tlb: config.tlb.map(Tlb::new),
                xmem_enabled,
                tc_vpn: [TC_EMPTY; TC_ENTRIES],
                tc_pfn: [0; TC_ENTRIES],
                page_shift: os.page_table().page_size().trailing_zeros(),
                os,
            },
            lib: XMemLib::new(),
            labels: BTreeMap::new(),
            next_site: 0,
            next_sample_at: u64::MAX,
            telemetry: None,
        }
    }

    /// Turns on epoch sampling: one [`TelemetrySample`] per
    /// `epoch_instructions` retired (clamped to at least 1).
    fn enable_telemetry(&mut self, epoch_instructions: u64) {
        let series = TelemetrySeries::new(epoch_instructions);
        self.next_sample_at = series.epoch_instructions;
        self.telemetry = Some(TelemetryState {
            series,
            prev: Snapshot::default(),
        });
    }

    /// Captures the current cumulative counters across all layers.
    fn snapshot(&self) -> Snapshot {
        let core = self.core.stats();
        let dram = self.mem.hierarchy.dram_stats();
        let alb = self.mem.amu.alb_stats();
        let stride = self
            .mem
            .hierarchy
            .stride_prefetch_stats()
            .unwrap_or_default();
        let xmem_pf = self.mem.hierarchy.xmem_prefetch_stats();
        Snapshot {
            instructions: core.instructions,
            cycles: core.cycles,
            l1_misses: self.mem.hierarchy.l1_stats().misses(),
            l2_misses: self.mem.hierarchy.l2_stats().misses(),
            l3_misses: self.mem.hierarchy.l3_stats().misses(),
            prefetch_issued: stride.issued + xmem_pf.issued,
            prefetch_useful: stride.useful + xmem_pf.useful,
            row_hits: dram.row_hits,
            dram_accesses: dram.accesses(),
            busy_bank_cycles: self.mem.hierarchy.dram().busy_bank_cycles(),
            alb_hits: alb.hits,
            alb_lookups: alb.lookups(),
            amu_invalidations: self.mem.amu.alb_invalidations(),
        }
    }

    /// Closes the current epoch: records per-epoch deltas plus
    /// instantaneous gauges, then arms the next boundary.
    fn take_sample(&mut self) {
        let Some(prev) = self.telemetry.as_ref().map(|t| t.prev) else {
            // Not enabled — only reachable if `next_sample_at` was armed
            // without state; disarm so the per-op check stays cold.
            self.next_sample_at = u64::MAX;
            return;
        };
        let cur = self.snapshot();
        let d_instr = cur.instructions - prev.instructions;
        let d_cycles = cur.cycles.saturating_sub(prev.cycles);
        let ratio = |n: u64, d: u64| if d == 0 { 0.0 } else { n as f64 / d as f64 };
        let per_kilo = |n: u64| ratio(n, d_instr) * 1000.0;
        let now = self.core.now();
        let dram = self.mem.hierarchy.dram();
        let total_banks = dram.config().total_banks() as u64;
        let sample = TelemetrySample {
            instructions: cur.instructions,
            cycles: cur.cycles,
            ipc: ratio(d_instr, d_cycles),
            rob_load_occupancy: self.core.rob_load_occupancy() as u64,
            outstanding_loads: self.core.outstanding_loads() as u64,
            l1_mpki: per_kilo(cur.l1_misses - prev.l1_misses),
            l2_mpki: per_kilo(cur.l2_misses - prev.l2_misses),
            l3_mpki: per_kilo(cur.l3_misses - prev.l3_misses),
            l2_psel: self.mem.hierarchy.l2_psel() as f64,
            l3_psel: self.mem.hierarchy.l3_psel() as f64,
            prefetch_issued: cur.prefetch_issued - prev.prefetch_issued,
            prefetch_useful: cur.prefetch_useful - prev.prefetch_useful,
            row_hit_rate: ratio(
                cur.row_hits - prev.row_hits,
                cur.dram_accesses - prev.dram_accesses,
            ),
            bank_busy_fraction: ratio(
                cur.busy_bank_cycles - prev.busy_bank_cycles,
                d_cycles * total_banks,
            ),
            queue_depth: dram.queued_requests(now) as f64,
            alb_hit_rate: ratio(
                cur.alb_hits - prev.alb_hits,
                cur.alb_lookups - prev.alb_lookups,
            ),
            amu_invalidations: cur.amu_invalidations - prev.amu_invalidations,
        };
        // simlint: allow(unwrap, reason = "sample() is only called when next_sample_at is armed, which implies telemetry state")
        let state = self.telemetry.as_mut().expect("telemetry state present");
        let epoch = state.series.epoch_instructions;
        state.series.samples.push(sample);
        state.prev = cur;
        self.next_sample_at = (cur.instructions / epoch + 1) * epoch;
    }

    /// Final statistics plus the sampled telemetry series (when enabled).
    /// Flushes the trailing partial epoch first, so the series always
    /// covers the whole run.
    fn report_with_telemetry(mut self) -> (RunReport, Option<TelemetrySeries>) {
        if let Some(state) = &self.telemetry {
            if self.core.instructions() > state.prev.instructions {
                self.take_sample();
            }
        }
        let series = self.telemetry.take().map(|t| t.series);
        (self.report(), series)
    }

    /// Final statistics for the run.
    fn report(mut self) -> RunReport {
        let core = self.core.stats();
        self.lib.counter_mut().count_program(core.instructions);
        RunReport {
            core,
            l1: self.mem.hierarchy.l1_stats(),
            l2: self.mem.hierarchy.l2_stats(),
            l3: self.mem.hierarchy.l3_stats(),
            dram: self.mem.hierarchy.dram_stats(),
            alb: self.mem.amu.alb_stats(),
            xmem_instructions: self.lib.counter().xmem_instructions(),
            instruction_overhead: self.lib.counter().overhead_fraction(),
            xmem_prefetch: self.mem.hierarchy.xmem_prefetch_stats(),
            stride_prefetch: self.mem.hierarchy.stride_prefetch_stats(),
        }
    }
}

impl TraceSink for Machine {
    fn op(&mut self, op: Op) {
        self.core.step(op, &mut self.mem);
        if self.core.instructions() >= self.next_sample_at {
            self.take_sample();
        }
    }

    fn op_batch(&mut self, batch: &OpBatch) {
        if self.next_sample_at == u64::MAX {
            // Telemetry disarmed: the per-op boundary check is always
            // false, so the tight batch loop is observably identical.
            self.core.step_batch(batch, &mut self.mem);
        } else {
            for i in 0..batch.len() {
                self.core.step(batch.op(i), &mut self.mem);
                if self.core.instructions() >= self.next_sample_at {
                    self.take_sample();
                }
            }
        }
    }

    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        // The page table is about to grow: drop the translate cache.
        self.mem.tc_vpn = [TC_EMPTY; TC_ENTRIES];
        self.mem
            .os
            .malloc(bytes, atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("simulated physical memory exhausted")
            .raw()
    }

    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        if let Some(&id) = self.labels.get(label) {
            return id;
        }
        let site = CallSite {
            file: SINK_SITE_FILE,
            line: self.next_site,
        };
        self.next_site += 1;
        let id = self
            .lib
            .create_atom(site, label, attrs)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("atom limit exceeded");
        self.labels.insert(label.to_owned(), id);
        id
    }

    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(start),
                len,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_MAP failed");
    }

    fn unmap(&mut self, start: u64, len: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(start),
                len,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_UNMAP failed");
    }

    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_map_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                atom,
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_MAP2D failed");
    }

    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_unmap_2d(
                &mut self.mem.amu,
                self.mem.os.page_table(),
                VirtAddr::new(base),
                size_x,
                size_y,
                len_x,
            )
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_UNMAP2D failed");
    }

    fn activate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_activate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_ACTIVATE failed");
    }

    fn deactivate(&mut self, atom: AtomId) {
        if !self.mem.xmem_enabled {
            return;
        }
        self.lib
            .atom_deactivate(&mut self.mem.amu, self.mem.os.page_table(), atom)
            // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
            .expect("ATOM_DEACTIVATE failed");
    }
}

/// Runs `generate` on a machine configured by `config`, returning run
/// statistics. Deterministic: identical inputs give identical reports.
///
/// # Examples
///
/// ```
/// use xmem_sim::{run_workload, SystemConfig, SystemKind};
/// use workloads::polybench::{KernelParams, PolybenchKernel};
///
/// let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
/// let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
/// let report = run_workload(&cfg, |sink| PolybenchKernel::Gemm.generate(&p, sink));
/// assert!(report.core.cycles > 0);
/// ```
pub fn run_workload(config: &SystemConfig, generate: impl Fn(&mut dyn TraceSink)) -> RunReport {
    run_workload_with_telemetry(config, None, generate).0
}

/// Like [`run_workload`], additionally sampling a [`TelemetrySeries`] every
/// `epoch_instructions` retired instructions when `Some`. Telemetry is
/// observational only: the returned [`RunReport`] is identical whether or
/// not sampling is enabled, and a disabled run costs one integer compare
/// per op.
///
/// # Examples
///
/// ```
/// use xmem_sim::{run_workload_with_telemetry, SystemConfig, SystemKind};
/// use workloads::polybench::{KernelParams, PolybenchKernel};
///
/// let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
/// let p = KernelParams { n: 24, tile_bytes: 2048, steps: 2, reuse: 200 };
/// let (report, series) = run_workload_with_telemetry(&cfg, Some(1_000), |sink| {
///     PolybenchKernel::Gemm.generate(&p, sink)
/// });
/// let series = series.expect("telemetry was enabled");
/// assert_eq!(
///     series.samples.last().map(|s| s.instructions),
///     Some(report.core.instructions)
/// );
/// ```
pub fn run_workload_with_telemetry(
    config: &SystemConfig,
    epoch_instructions: Option<u64>,
    generate: impl Fn(&mut dyn TraceSink),
) -> (RunReport, Option<TelemetrySeries>) {
    run_generator(config, epoch_instructions, &ClosureGen(generate))
}

/// A workload generator the two-pass runner can replay into any sink type.
///
/// The generic method is the point: implementors written against a concrete
/// `S` monomorphize, so the executing pass inlines generator → batch
/// emitter → machine with no per-op virtual dispatch. `dyn TraceSink` still
/// satisfies `S` (it is `?Sized`), which is how the closure-based
/// [`run_workload`] entry points reuse the same flow.
pub trait Generator {
    /// Replays the workload into `sink`. Must be deterministic: the runner
    /// calls this twice (scan pass, then execute pass) and the two replays
    /// must emit the same trace.
    fn emit<S: TraceSink + ?Sized>(&self, sink: &mut S);
}

/// Adapts a `Fn(&mut dyn TraceSink)` closure to [`Generator`] for the
/// dyn-dispatch entry points ([`run_workload`] and friends).
struct ClosureGen<F: Fn(&mut dyn TraceSink)>(F);

impl<F: Fn(&mut dyn TraceSink)> Generator for ClosureGen<F> {
    fn emit<S: TraceSink + ?Sized>(&self, sink: &mut S) {
        // `S` may itself be unsized, so it can't coerce to `dyn TraceSink`
        // directly; the Sized forwarder below can.
        (self.0)(&mut ForwardSink(sink));
    }
}

/// Sized shim forwarding every [`TraceSink`] method to a possibly-unsized
/// inner sink, so `&mut S` can be handed to a `&mut dyn TraceSink` closure.
struct ForwardSink<'a, S: TraceSink + ?Sized>(&'a mut S);

impl<S: TraceSink + ?Sized> TraceSink for ForwardSink<'_, S> {
    fn op(&mut self, op: Op) {
        self.0.op(op);
    }
    fn op_batch(&mut self, batch: &OpBatch) {
        self.0.op_batch(batch);
    }
    fn alloc(&mut self, bytes: u64, atom: Option<AtomId>) -> u64 {
        self.0.alloc(bytes, atom)
    }
    fn create_atom(&mut self, label: &str, attrs: AtomAttributes) -> AtomId {
        self.0.create_atom(label, attrs)
    }
    fn map(&mut self, atom: AtomId, start: u64, len: u64) {
        self.0.map(atom, start, len);
    }
    fn unmap(&mut self, start: u64, len: u64) {
        self.0.unmap(start, len);
    }
    fn map_2d(&mut self, atom: AtomId, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.0.map_2d(atom, base, size_x, size_y, len_x);
    }
    fn unmap_2d(&mut self, base: u64, size_x: u64, size_y: u64, len_x: u64) {
        self.0.unmap_2d(base, size_x, size_y, len_x);
    }
    fn activate(&mut self, atom: AtomId) {
        self.0.activate(atom);
    }
    fn deactivate(&mut self, atom: AtomId) {
        self.0.deactivate(atom);
    }
}

/// Runs the two-pass simulation for a [`Generator`], monomorphized over the
/// concrete sink type of each pass. [`RunSpec::execute`] routes here, so
/// sweep runs pay zero per-op virtual dispatch on the generation side.
///
/// [`RunSpec::execute`]: crate::harness::RunSpec::execute
pub fn run_generator<G: Generator>(
    config: &SystemConfig,
    epoch_instructions: Option<u64>,
    generator: &G,
) -> (RunReport, Option<TelemetrySeries>) {
    // Pass 1: compile-time summarization.
    let mut scan = ScanSink::new();
    generator.emit(&mut scan);
    let segment = scan.segment();
    // Load time: GAT + translator + PATs + placement primitives.
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    // Execution: generators emit per-op; the BatchEmitter buffers ops into
    // OpBatches and the machine executes them through the batched path.
    let mut machine = Machine::new(config, &loaded);
    if let Some(epoch) = epoch_instructions {
        machine.enable_telemetry(epoch);
    }
    {
        let mut emitter = BatchEmitter::new(&mut machine);
        generator.emit(&mut emitter);
    }
    machine.report_with_telemetry()
}

/// Scalar reference arm for the byte-identity suite: identical to
/// [`run_workload`] except the generator drives the machine one op at a
/// time — no [`BatchEmitter`], the pre-batching execution shape. Exists so
/// tests can prove the batched path changes nothing; not part of the
/// supported API.
#[doc(hidden)]
pub fn run_workload_scalar(
    config: &SystemConfig,
    generate: impl Fn(&mut dyn TraceSink),
) -> RunReport {
    let mut scan = ScanSink::new();
    generate(&mut scan);
    let segment = scan.segment();
    let translator = AttributeTranslator::with_row_bytes(config.dram.row_bytes);
    // simlint: allow(unwrap, reason = "workload-invariant violation; the sweep's catch_unwind surfaces it as RunOutcome::Failed")
    let loaded = load_segment(ProcessId(0), &segment, &translator).expect("program load failed");
    let mut machine = Machine::new(config, &loaded);
    generate(&mut machine);
    machine.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemKind;
    use workloads::polybench::{KernelParams, PolybenchKernel};

    fn params() -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: 2048,
            steps: 2,
            reuse: 200,
        }
    }

    #[test]
    fn baseline_and_xmem_run_same_work() {
        let p = params();
        let base = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        let xmem = run_workload(
            &SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem),
            |s| PolybenchKernel::Gemm.generate(&p, s),
        );
        assert_eq!(base.core.instructions, xmem.core.instructions);
        assert_eq!(base.core.loads, xmem.core.loads);
        assert_eq!(base.xmem_instructions, 0);
        assert!(xmem.xmem_instructions > 0);
    }

    #[test]
    fn runs_are_deterministic() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let a = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        let b = run_workload(&cfg, |s| PolybenchKernel::Syrk.generate(&p, s));
        assert_eq!(a.core, b.core);
        assert_eq!(a.dram, b.dram);
    }

    #[test]
    fn alb_sees_traffic_with_xmem() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(r.alb.lookups() > 0);
        assert!(r.alb.hit_rate() > 0.5, "ALB hit rate {}", r.alb.hit_rate());
    }

    #[test]
    fn tlb_adds_walk_cost_but_preserves_work() {
        let p = params();
        let base_cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Baseline);
        let tlb_cfg = base_cfg.with_tlb();
        let without = run_workload(&base_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        let with = run_workload(&tlb_cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(without.core.instructions, with.core.instructions);
        assert!(
            with.core.cycles > without.core.cycles,
            "page walks must cost time: {} vs {}",
            with.core.cycles,
            without.core.cycles
        );
        // Small footprint → high TLB hit rate → bounded overhead.
        assert!((with.core.cycles as f64) < without.core.cycles as f64 * 1.5);
    }

    #[test]
    fn telemetry_does_not_perturb_the_run() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let plain = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        let (sampled, series) =
            run_workload_with_telemetry(&cfg, Some(500), |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(plain, sampled, "sampling must be observational only");
        assert!(series.is_some());
        let (unsampled, none) =
            run_workload_with_telemetry(&cfg, None, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert_eq!(plain, unsampled);
        assert!(none.is_none());
    }

    #[test]
    fn telemetry_covers_the_whole_run_in_epoch_order() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let epoch = 1_000;
        let (report, series) = run_workload_with_telemetry(&cfg, Some(epoch), |s| {
            PolybenchKernel::Gemm.generate(&p, s)
        });
        let series = series.expect("telemetry enabled");
        assert_eq!(series.epoch_instructions, epoch);
        assert!(
            series.samples.len() as u64 >= report.core.instructions / epoch,
            "one sample per epoch at minimum: {} samples for {} instructions",
            series.samples.len(),
            report.core.instructions
        );
        // The final (possibly partial) epoch is flushed at report time.
        assert_eq!(
            series.samples.last().map(|s| s.instructions),
            Some(report.core.instructions)
        );
        for pair in series.samples.windows(2) {
            assert!(pair[0].instructions < pair[1].instructions);
            assert!(pair[0].cycles <= pair[1].cycles);
        }
        // Epochs with work in them report sane rates.
        let first = &series.samples[0];
        assert!(first.ipc > 0.0 && first.ipc <= cfg.core.issue_width as f64);
        assert!(first.l1_mpki >= 0.0);
        // Each sample closes a distinct epoch. A multi-instruction op can
        // overshoot the boundary slightly, but never by a full epoch, and
        // two samples never land in the same epoch.
        for (i, s) in series.samples.iter().enumerate() {
            assert!(s.instructions > i as u64 * epoch, "sample {i}: {s:?}");
        }
        for pair in series.samples.windows(2) {
            assert!(
                pair[0].instructions / epoch < pair[1].instructions.div_ceil(epoch),
                "samples share an epoch: {pair:?}"
            );
        }
    }

    #[test]
    fn telemetry_sees_xmem_activity() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(32 << 10, SystemKind::Xmem);
        let (report, series) = run_workload_with_telemetry(&cfg, Some(2_000), |s| {
            PolybenchKernel::Gemm.generate(&p, s)
        });
        let series = series.expect("telemetry enabled");
        let sampled_lookup_hits: f64 = series.samples.iter().map(|s| s.alb_hit_rate).sum();
        assert!(
            sampled_lookup_hits > 0.0,
            "ALB activity must appear in the series"
        );
        assert!(report.alb.lookups() > 0);
    }

    #[test]
    fn instruction_overhead_is_tiny() {
        let p = params();
        let cfg = SystemConfig::scaled_use_case1(64 << 10, SystemKind::Xmem);
        let r = run_workload(&cfg, |s| PolybenchKernel::Gemm.generate(&p, s));
        assert!(
            r.instruction_overhead < 0.005,
            "overhead {}",
            r.instruction_overhead
        );
    }
}
