//! Epoch-sampled cross-layer telemetry: time-series statistics for every
//! simulated component, plus Chrome-trace export.
//!
//! End-of-run aggregate counters say *what* a run cost; they cannot say
//! *when* — which loop nest thrashed the L3, where the row-hit rate fell
//! off, when DRRIP's duel flipped. The telemetry layer samples the whole
//! machine every `epoch_instructions` retired instructions (default
//! [`DEFAULT_EPOCH_INSTRUCTIONS`]) into a [`TelemetrySeries`]:
//!
//! * **core** — IPC over the epoch, ROB load occupancy, outstanding misses;
//! * **caches** — per-level MPKI over the epoch, the L2/L3 DRRIP PSEL
//!   trajectory, prefetches issued/useful;
//! * **DRAM** — row-hit rate over the epoch, mean bank-busy fraction,
//!   FR-FCFS queue-depth proxy;
//! * **XMem** — ALB hit rate over the epoch, AMU invalidations.
//!
//! A series serializes as an optional, backwards-compatible `"telemetry"`
//! block of `xmem-report-v1` records (columnar arrays, byte-identical
//! round-trip), and [`ChromeTrace`] renders any number of series as a
//! Chrome-trace-format JSON document openable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).
//!
//! Sampling is off by default and costs one integer compare per op when
//! disabled (see the `overheads` binary's microbench).

use crate::report_sink::JsonValue;

/// Default sampling epoch: one sample per 100k retired instructions.
pub const DEFAULT_EPOCH_INSTRUCTIONS: u64 = 100_000;

/// One telemetry sample, taken at an epoch boundary (or at end of run for
/// the final partial epoch). Rate-style fields (`ipc`, `*_mpki`,
/// `row_hit_rate`, `alb_hit_rate`, `bank_busy_fraction`, prefetch counts,
/// `amu_invalidations`) cover *this epoch only*; `instructions` / `cycles`
/// are cumulative, and the remaining fields are instantaneous gauges.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TelemetrySample {
    /// Cumulative instructions retired at the sample point.
    pub instructions: u64,
    /// Cumulative cycles at the sample point.
    pub cycles: u64,
    /// Instructions per cycle over the epoch.
    pub ipc: f64,
    /// Loads tracked in the ROB window at the sample point (gauge).
    pub rob_load_occupancy: u64,
    /// Loads still outstanding at the sample point (gauge).
    pub outstanding_loads: u64,
    /// L1 misses per kilo-instruction over the epoch.
    pub l1_mpki: f64,
    /// L2 misses per kilo-instruction over the epoch.
    pub l2_mpki: f64,
    /// L3 misses per kilo-instruction over the epoch.
    pub l3_mpki: f64,
    /// L2 DRRIP policy-select counter (gauge; 0 unless DRRIP).
    pub l2_psel: f64,
    /// L3 DRRIP policy-select counter (gauge; 0 unless DRRIP).
    pub l3_psel: f64,
    /// Prefetches issued over the epoch (stride + XMem-guided).
    pub prefetch_issued: u64,
    /// Prefetched lines proven useful over the epoch.
    pub prefetch_useful: u64,
    /// DRAM row-hit rate over the epoch's row activations.
    pub row_hit_rate: f64,
    /// Mean fraction of banks busy serving reads over the epoch.
    pub bank_busy_fraction: f64,
    /// FR-FCFS queue-depth proxy at the sample point (gauge).
    pub queue_depth: f64,
    /// ALB hit rate over the epoch's lookups.
    pub alb_hit_rate: f64,
    /// ALB entries invalidated by remaps over the epoch.
    pub amu_invalidations: u64,
}

/// The columnar field order of the serialized `"telemetry"` block — one
/// array per field, all of equal length. Fixed so rendering (and the
/// determinism tests built on byte comparison) never reorders.
const U64_COLUMNS: [&str; 7] = [
    "instructions",
    "cycles",
    "rob_load_occupancy",
    "outstanding_loads",
    "prefetch_issued",
    "prefetch_useful",
    "amu_invalidations",
];
const F64_COLUMNS: [&str; 10] = [
    "ipc",
    "l1_mpki",
    "l2_mpki",
    "l3_mpki",
    "l2_psel",
    "l3_psel",
    "row_hit_rate",
    "bank_busy_fraction",
    "queue_depth",
    "alb_hit_rate",
];

impl TelemetrySample {
    fn u64_column(&self, name: &str) -> u64 {
        match name {
            "instructions" => self.instructions,
            "cycles" => self.cycles,
            "rob_load_occupancy" => self.rob_load_occupancy,
            "outstanding_loads" => self.outstanding_loads,
            "prefetch_issued" => self.prefetch_issued,
            "prefetch_useful" => self.prefetch_useful,
            "amu_invalidations" => self.amu_invalidations,
            _ => unreachable!("unknown u64 column {name}"),
        }
    }

    fn u64_column_mut(&mut self, name: &str) -> &mut u64 {
        match name {
            "instructions" => &mut self.instructions,
            "cycles" => &mut self.cycles,
            "rob_load_occupancy" => &mut self.rob_load_occupancy,
            "outstanding_loads" => &mut self.outstanding_loads,
            "prefetch_issued" => &mut self.prefetch_issued,
            "prefetch_useful" => &mut self.prefetch_useful,
            "amu_invalidations" => &mut self.amu_invalidations,
            _ => unreachable!("unknown u64 column {name}"),
        }
    }

    fn f64_column(&self, name: &str) -> f64 {
        match name {
            "ipc" => self.ipc,
            "l1_mpki" => self.l1_mpki,
            "l2_mpki" => self.l2_mpki,
            "l3_mpki" => self.l3_mpki,
            "l2_psel" => self.l2_psel,
            "l3_psel" => self.l3_psel,
            "row_hit_rate" => self.row_hit_rate,
            "bank_busy_fraction" => self.bank_busy_fraction,
            "queue_depth" => self.queue_depth,
            "alb_hit_rate" => self.alb_hit_rate,
            _ => unreachable!("unknown f64 column {name}"),
        }
    }

    fn f64_column_mut(&mut self, name: &str) -> &mut f64 {
        match name {
            "ipc" => &mut self.ipc,
            "l1_mpki" => &mut self.l1_mpki,
            "l2_mpki" => &mut self.l2_mpki,
            "l3_mpki" => &mut self.l3_mpki,
            "l2_psel" => &mut self.l2_psel,
            "l3_psel" => &mut self.l3_psel,
            "row_hit_rate" => &mut self.row_hit_rate,
            "bank_busy_fraction" => &mut self.bank_busy_fraction,
            "queue_depth" => &mut self.queue_depth,
            "alb_hit_rate" => &mut self.alb_hit_rate,
            _ => unreachable!("unknown f64 column {name}"),
        }
    }
}

/// An epoch-sampled run's full time series.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySeries {
    /// The sampling epoch in instructions.
    pub epoch_instructions: u64,
    /// One sample per completed epoch, plus one for a final partial epoch.
    pub samples: Vec<TelemetrySample>,
}

impl TelemetrySeries {
    /// An empty series sampling every `epoch_instructions` instructions.
    pub fn new(epoch_instructions: u64) -> Self {
        TelemetrySeries {
            epoch_instructions: epoch_instructions.max(1),
            samples: Vec::new(),
        }
    }

    /// This series as the record's optional `"telemetry"` JSON block:
    /// `{"epoch_instructions": N, "series": {"<column>": [...], ...}}`,
    /// columnar with a fixed column order so rendering is deterministic.
    pub fn to_json(&self) -> JsonValue {
        let mut columns: Vec<(String, JsonValue)> = Vec::new();
        // `instructions`/`cycles` lead, then the per-component columns in
        // machine order (core, caches, prefetch, DRAM, XMem).
        let order: [(&str, bool); 17] = [
            ("instructions", true),
            ("cycles", true),
            ("ipc", false),
            ("rob_load_occupancy", true),
            ("outstanding_loads", true),
            ("l1_mpki", false),
            ("l2_mpki", false),
            ("l3_mpki", false),
            ("l2_psel", false),
            ("l3_psel", false),
            ("prefetch_issued", true),
            ("prefetch_useful", true),
            ("row_hit_rate", false),
            ("bank_busy_fraction", false),
            ("queue_depth", false),
            ("alb_hit_rate", false),
            ("amu_invalidations", true),
        ];
        for (name, is_u64) in order {
            let items = self
                .samples
                .iter()
                .map(|s| {
                    if is_u64 {
                        JsonValue::U64(s.u64_column(name))
                    } else {
                        JsonValue::F64(s.f64_column(name))
                    }
                })
                .collect();
            columns.push((name.to_string(), JsonValue::Array(items)));
        }
        JsonValue::object([
            (
                "epoch_instructions",
                JsonValue::U64(self.epoch_instructions),
            ),
            ("series", JsonValue::Object(columns)),
        ])
    }

    /// Parses a `"telemetry"` block back into a series — the inverse of
    /// [`TelemetrySeries::to_json`]. `None` if any column is missing,
    /// mistyped, or of mismatched length.
    pub fn from_json(block: &JsonValue) -> Option<TelemetrySeries> {
        let epoch_instructions = block.get("epoch_instructions")?.as_u64()?;
        let series = block.get("series")?;
        let len = series.get("instructions")?.as_array()?.len();
        let mut samples = vec![TelemetrySample::default(); len];
        for name in U64_COLUMNS {
            let col = series.get(name)?.as_array()?;
            if col.len() != len {
                return None;
            }
            for (sample, v) in samples.iter_mut().zip(col) {
                *sample.u64_column_mut(name) = v.as_u64()?;
            }
        }
        for name in F64_COLUMNS {
            let col = series.get(name)?.as_array()?;
            if col.len() != len {
                return None;
            }
            for (sample, v) in samples.iter_mut().zip(col) {
                *sample.f64_column_mut(name) = v.as_f64()?;
            }
        }
        Some(TelemetrySeries {
            epoch_instructions,
            samples,
        })
    }

    /// Reads the optional `"telemetry"` block out of an `xmem-report-v1`
    /// record object. `None` when the record predates telemetry (or was
    /// run without `--epoch`) — old records stay fully readable.
    pub fn from_record_json(record: &JsonValue) -> Option<TelemetrySeries> {
        Self::from_json(record.get("telemetry")?)
    }
}

// ─────────────────────────── Chrome tracing ──────────────────────────

/// Accumulates telemetry series as Chrome-trace-format counter tracks —
/// one process per series (named after the run's label), one counter
/// track per metric group — renderable with [`ChromeTrace::render`] into
/// a JSON document that `chrome://tracing` and Perfetto open directly.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<JsonValue>,
    next_pid: u64,
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether any series have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Adds one run's series as a new trace process named `label`.
    /// `freq_ghz` converts simulated cycles to trace microseconds.
    pub fn add_series(&mut self, label: &str, series: &TelemetrySeries, freq_ghz: f64) {
        let pid = self.next_pid;
        self.next_pid += 1;
        self.events.push(JsonValue::object([
            ("name", JsonValue::Str("process_name".into())),
            ("ph", JsonValue::Str("M".into())),
            ("pid", JsonValue::U64(pid)),
            ("tid", JsonValue::U64(0)),
            (
                "args",
                JsonValue::object([("name", JsonValue::Str(label.to_string()))]),
            ),
        ]));
        for s in &series.samples {
            let ts = s.cycles as f64 / (freq_ghz * 1000.0);
            let mut counter = |name: &str, args: Vec<(&str, JsonValue)>| {
                self.events.push(JsonValue::object([
                    ("name", JsonValue::Str(name.to_string())),
                    ("ph", JsonValue::Str("C".into())),
                    ("ts", JsonValue::F64(ts)),
                    ("pid", JsonValue::U64(pid)),
                    ("tid", JsonValue::U64(0)),
                    ("args", JsonValue::object(args)),
                ]));
            };
            counter("ipc", vec![("ipc", JsonValue::F64(s.ipc))]);
            counter(
                "mpki",
                vec![
                    ("l1", JsonValue::F64(s.l1_mpki)),
                    ("l2", JsonValue::F64(s.l2_mpki)),
                    ("l3", JsonValue::F64(s.l3_mpki)),
                ],
            );
            counter(
                "drrip_psel",
                vec![
                    ("l2", JsonValue::F64(s.l2_psel)),
                    ("l3", JsonValue::F64(s.l3_psel)),
                ],
            );
            counter(
                "loads_in_flight",
                vec![
                    ("rob", JsonValue::U64(s.rob_load_occupancy)),
                    ("outstanding", JsonValue::U64(s.outstanding_loads)),
                ],
            );
            counter(
                "prefetch",
                vec![
                    ("issued", JsonValue::U64(s.prefetch_issued)),
                    ("useful", JsonValue::U64(s.prefetch_useful)),
                ],
            );
            counter(
                "row_hit_rate",
                vec![("rate", JsonValue::F64(s.row_hit_rate))],
            );
            counter(
                "bank_busy_fraction",
                vec![("fraction", JsonValue::F64(s.bank_busy_fraction))],
            );
            counter(
                "queue_depth",
                vec![("depth", JsonValue::F64(s.queue_depth))],
            );
            counter(
                "alb_hit_rate",
                vec![("rate", JsonValue::F64(s.alb_hit_rate))],
            );
            counter(
                "amu_invalidations",
                vec![("count", JsonValue::U64(s.amu_invalidations))],
            );
        }
    }

    /// Renders the Chrome-trace JSON document.
    pub fn render(&self) -> String {
        JsonValue::object([("traceEvents", JsonValue::Array(self.events.clone()))]).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> TelemetrySample {
        TelemetrySample {
            instructions: (i + 1) * 1000,
            cycles: (i + 1) * 1700,
            ipc: 0.57 + i as f64 * 0.01,
            rob_load_occupancy: 3 + i,
            outstanding_loads: i,
            l1_mpki: 12.25,
            l2_mpki: 6.5,
            l3_mpki: 1.125,
            l2_psel: -17.0 - i as f64,
            l3_psel: 1023.0,
            prefetch_issued: 40 + i,
            prefetch_useful: 22,
            row_hit_rate: 0.75,
            bank_busy_fraction: 0.33,
            queue_depth: 2.0,
            alb_hit_rate: 0.99,
            amu_invalidations: i,
        }
    }

    fn series() -> TelemetrySeries {
        TelemetrySeries {
            epoch_instructions: 1000,
            samples: (0..3).map(sample).collect(),
        }
    }

    /// The block round-trips exactly — values, column order, and bytes.
    #[test]
    fn telemetry_block_round_trips_byte_identically() {
        let s = series();
        let json = s.to_json();
        let parsed = TelemetrySeries::from_json(&json).expect("parses");
        assert_eq!(parsed, s);
        assert_eq!(parsed.to_json().render(), json.render());
        // Text round-trip too (through the JSON parser).
        let reparsed = JsonValue::parse(&json.render()).unwrap();
        assert_eq!(
            TelemetrySeries::from_json(&reparsed).expect("parses"),
            s,
            "negative PSEL and fractional gauges must survive text"
        );
    }

    #[test]
    fn from_json_rejects_malformed_blocks() {
        let good = series().to_json();
        assert!(TelemetrySeries::from_json(&good).is_some());
        // Missing column.
        let JsonValue::Object(mut pairs) = good.clone() else {
            unreachable!()
        };
        let JsonValue::Object(cols) = &mut pairs[1].1 else {
            unreachable!()
        };
        cols.retain(|(k, _)| k != "row_hit_rate");
        assert!(TelemetrySeries::from_json(&JsonValue::Object(pairs)).is_none());
        // Ragged column.
        let JsonValue::Object(mut pairs) = good else {
            unreachable!()
        };
        let JsonValue::Object(cols) = &mut pairs[1].1 else {
            unreachable!()
        };
        let ipc = cols.iter_mut().find(|(k, _)| k == "ipc").unwrap();
        let JsonValue::Array(items) = &mut ipc.1 else {
            unreachable!()
        };
        items.pop();
        assert!(TelemetrySeries::from_json(&JsonValue::Object(pairs)).is_none());
        // Not a telemetry block at all.
        assert!(TelemetrySeries::from_json(&JsonValue::Null).is_none());
        assert!(TelemetrySeries::from_record_json(&JsonValue::object([(
            "label",
            JsonValue::Str("x".into())
        )]))
        .is_none());
    }

    #[test]
    fn chrome_trace_is_valid_counter_json() {
        let mut trace = ChromeTrace::new();
        assert!(trace.is_empty());
        trace.add_series("gemm/Xmem", &series(), 3.6);
        trace.add_series("gemm/Baseline", &series(), 3.6);
        let doc = JsonValue::parse(&trace.render()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 2 process_name metadata + 2 × 3 samples × 10 counter tracks.
        assert_eq!(events.len(), 2 + 2 * 3 * 10);
        let meta = &events[0];
        assert_eq!(meta.get("ph").and_then(|p| p.as_str()), Some("M"));
        assert_eq!(
            meta.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str()),
            Some("gemm/Xmem")
        );
        for ev in &events[1..] {
            let ph = ev.get("ph").and_then(|p| p.as_str()).unwrap();
            assert!(ph == "C" || ph == "M", "unexpected phase {ph}");
            if ph == "C" {
                assert!(ev.get("ts").and_then(|t| t.as_f64()).is_some());
                assert!(ev.get("pid").and_then(|p| p.as_u64()).is_some());
                assert!(matches!(ev.get("args"), Some(JsonValue::Object(_))));
            }
        }
        // The two series land in distinct processes.
        let pids: std::collections::HashSet<u64> = events
            .iter()
            .filter_map(|e| e.get("pid").and_then(|p| p.as_u64()))
            .collect();
        assert_eq!(pids.len(), 2);
    }
}
