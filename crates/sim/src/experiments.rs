//! Experiment runners for the paper's two use cases.
//!
//! [`KernelRun`] is the entry point for use-case-1 experiments (Figs 4–6):
//! a builder naming the kernel, its parameters, and the system to run it
//! on. [`run_placement`] / [`placement_specs`] cover use case 2 (Figs
//! 7–8); the spec form exposes each system's §6.3 configuration grid so
//! the bench binaries can flatten entire figures into one parallel
//! [`Sweep`](crate::harness::Sweep).

use crate::config::{FramePolicyKind, SystemConfig, SystemKind};
use crate::harness::{RunSpec, Sweep, WorkloadSpec};
use crate::machine::run_workload;
use crate::report::RunReport;
use dram_sim::AddressMapping;
use std::fmt;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};

/// One use-case-1 kernel experiment, built up fluently:
///
/// ```
/// use workloads::polybench::{KernelParams, PolybenchKernel};
/// use xmem_sim::{KernelRun, SystemKind};
///
/// let p = KernelParams { n: 16, tile_bytes: 1024, steps: 1, reuse: 200 };
/// let report = KernelRun::new(PolybenchKernel::Gemm, p)
///     .l3_bytes(32 << 10)
///     .system(SystemKind::Xmem)
///     .run();
/// assert!(report.cycles() > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KernelRun {
    kernel: PolybenchKernel,
    params: KernelParams,
    l3_bytes: u64,
    system: SystemKind,
    per_core_gbps: Option<f64>,
}

impl KernelRun {
    /// A run of `kernel` with `params` on the scaled use-case-1 machine
    /// (32 KB L3, [`SystemKind::Baseline`] until overridden).
    pub fn new(kernel: PolybenchKernel, params: KernelParams) -> Self {
        KernelRun {
            kernel,
            params,
            l3_bytes: 32 << 10,
            system: SystemKind::Baseline,
            per_core_gbps: None,
        }
    }

    /// Sets the scaled L3 capacity (Fig 4/5 sweep axis).
    pub fn l3_bytes(mut self, bytes: u64) -> Self {
        self.l3_bytes = bytes;
        self
    }

    /// Sets which of the paper's systems to model.
    pub fn system(mut self, kind: SystemKind) -> Self {
        self.system = kind;
        self
    }

    /// Overrides per-core memory bandwidth (Fig 6: 2 / 1 / 0.5 GB/s).
    pub fn per_core_gbps(mut self, gbps: f64) -> Self {
        self.per_core_gbps = Some(gbps);
        self
    }

    /// The complete system configuration this run will simulate.
    pub fn config(&self) -> SystemConfig {
        let cfg = SystemConfig::scaled_use_case1(self.l3_bytes, self.system);
        match self.per_core_gbps {
            Some(gbps) => cfg.with_per_core_bandwidth(gbps),
            None => cfg,
        }
    }

    /// This run as an enumerable [`RunSpec`] (for batching many runs into
    /// one parallel sweep). The label is `<kernel>/<system>`.
    pub fn spec(&self) -> RunSpec {
        RunSpec::new(
            format!("{}/{}", self.kernel.name(), self.system),
            self.config(),
            WorkloadSpec::kernel(self.kernel, self.params),
        )
    }

    /// Executes the run.
    pub fn run(&self) -> RunReport {
        run_workload(&self.config(), |sink| {
            self.kernel.generate(&self.params, sink)
        })
    }
}

/// The three systems compared in Figs 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uc2System {
    /// Strengthened baseline (§6.3): best of the nine address mappings,
    /// randomized VA→PA, prefetcher enabled only if it helps.
    Baseline,
    /// XMem-guided OS placement (§6.2) — a software-only use of XMem: the
    /// cache hierarchy stays at baseline; only the frame policy changes.
    Xmem,
    /// Perfect row-buffer locality (the upper bound of Fig 7).
    IdealRbl,
}

impl Uc2System {
    /// Display name matching the paper's figures.
    #[deprecated(note = "use the Display impl: `format!(\"{sys}\")`")]
    pub fn name(self) -> &'static str {
        match self {
            Uc2System::Baseline => "Baseline",
            Uc2System::Xmem => "XMem",
            Uc2System::IdealRbl => "Ideal",
        }
    }
}

impl fmt::Display for Uc2System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Uc2System::Baseline => "Baseline",
            Uc2System::Xmem => "XMem",
            Uc2System::IdealRbl => "Ideal",
        })
    }
}

/// Physical memory for use-case-2 runs (footprints are ~10–20 MB).
const UC2_PHYS: u64 = 64 << 20;

fn uc2_config(
    mapping: AddressMapping,
    policy: FramePolicyKind,
    ideal: bool,
    prefetcher: bool,
) -> SystemConfig {
    SystemConfig::builder()
        .phys_bytes(UC2_PHYS)
        .mapping(mapping)
        .frame_policy(policy)
        .ideal_rbl(ideal)
        .stride_prefetcher(prefetcher)
        .build()
}

/// The §6.3 configuration grid for one placement workload under one
/// system, as enumerable specs (label `<workload>/<system>/<mapping>/pf±`).
///
/// Per §6.3, every system takes the best of prefetcher-on/off; the
/// baseline additionally takes the best of all nine address mappings, so
/// its grid has 18 points.
pub fn placement_specs(w: &PlacementWorkload, system: Uc2System) -> Vec<RunSpec> {
    let grid: Vec<(AddressMapping, FramePolicyKind, bool)> = match system {
        Uc2System::Baseline => AddressMapping::all_schemes()
            .into_iter()
            .map(|m| (m, FramePolicyKind::Randomized { seed: 0xA70 }, false))
            .collect(),
        // The OS places at data-structure granularity, which requires a
        // mapping whose bank bits sit above the page offset: the
        // bank-partitioned scheme5.
        Uc2System::Xmem => vec![(
            AddressMapping::scheme5(),
            FramePolicyKind::XmemPlacement,
            false,
        )],
        Uc2System::IdealRbl => vec![(
            AddressMapping::scheme1(),
            FramePolicyKind::Randomized { seed: 0xA70 },
            true,
        )],
    };
    grid.into_iter()
        .flat_map(|(mapping, policy, ideal)| {
            [true, false].map(|pf| {
                RunSpec::new(
                    format!(
                        "{}/{system}/{}/{}",
                        w.name,
                        mapping.name(),
                        if pf { "pf+" } else { "pf-" }
                    ),
                    uc2_config(mapping, policy, ideal, pf),
                    WorkloadSpec::placement(w.clone()),
                )
            })
        })
        .collect()
}

/// Runs one placement workload under the given system (Figs 7 and 8),
/// executing the system's §6.3 configuration grid on the parallel sweep
/// engine and keeping the fastest point.
///
/// Tie-breaking matches a serial `min_by_key` over the grid order, so the
/// result is deterministic and worker-count independent.
pub fn run_placement(w: &PlacementWorkload, system: Uc2System) -> RunReport {
    Sweep::new(placement_specs(w, system))
        .best()
        // simlint: allow(unwrap, reason = "placement_specs always yields a non-empty constant grid")
        .expect("placement grids are non-empty")
        .report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel_params() -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: 2048,
            steps: 2,
            reuse: 200,
        }
    }

    #[test]
    fn xmem_helps_oversized_tiles() {
        // The headline Fig 4 effect at one point: a tile ~2× the L3 thrashes
        // the baseline; XMem pins + prefetches and runs faster.
        let p = KernelParams {
            n: 96,
            tile_bytes: 64 << 10, // 64 KB tile vs 32 KB L3
            steps: 2,
            reuse: 200,
        };
        let base = KernelRun::new(PolybenchKernel::Gemm, p).run();
        let xmem = KernelRun::new(PolybenchKernel::Gemm, p)
            .system(SystemKind::Xmem)
            .run();
        assert!(
            xmem.cycles() < base.cycles(),
            "xmem {} vs baseline {}",
            xmem.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn bandwidth_reduction_slows_everything() {
        let p = tiny_kernel_params();
        let fast = KernelRun::new(PolybenchKernel::Mvt, p)
            .per_core_gbps(2.0)
            .run();
        let slow = KernelRun::new(PolybenchKernel::Mvt, p)
            .per_core_gbps(0.5)
            .run();
        assert!(slow.cycles() >= fast.cycles());
    }

    #[test]
    fn ideal_rbl_not_slower_than_baseline() {
        let mut w = PlacementWorkload::by_name("lbm").unwrap();
        w.accesses = 20_000;
        let base = run_placement(&w, Uc2System::Baseline);
        let ideal = run_placement(&w, Uc2System::IdealRbl);
        // Ideal has perfect row locality: it must not lose.
        assert!(
            ideal.cycles() <= base.cycles() * 101 / 100,
            "ideal {} vs base {}",
            ideal.cycles(),
            base.cycles()
        );
        assert!(ideal.dram.row_hit_rate() > 0.99);
    }

    #[test]
    fn uc2_systems_run_all_three() {
        let mut w = PlacementWorkload::by_name("kmeans").unwrap();
        w.accesses = 10_000;
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            let r = run_placement(&w, sys);
            assert!(r.cycles() > 0, "{:?}", sys);
            assert!(r.dram.accesses() > 0, "{:?} never reached DRAM", sys);
        }
    }

    #[test]
    fn baseline_grid_has_eighteen_points() {
        let w = PlacementWorkload::by_name("milc").unwrap();
        assert_eq!(placement_specs(&w, Uc2System::Baseline).len(), 18);
        assert_eq!(placement_specs(&w, Uc2System::Xmem).len(), 2);
        assert_eq!(placement_specs(&w, Uc2System::IdealRbl).len(), 2);
    }
}
