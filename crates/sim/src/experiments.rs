//! Experiment runners for the paper's two use cases.
//!
//! These functions encapsulate the exact system configurations each figure
//! compares; the `xmem-bench` crate loops them over workloads and
//! parameters to regenerate the figures.

use crate::config::{FramePolicyKind, SystemConfig, SystemKind};
use crate::machine::run_workload;
use crate::report::RunReport;
use dram_sim::AddressMapping;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};

/// Runs one use-case-1 kernel on the scaled system (Figs 4 and 5).
pub fn run_kernel(
    kernel: PolybenchKernel,
    params: &KernelParams,
    l3_bytes: u64,
    kind: SystemKind,
) -> RunReport {
    let cfg = SystemConfig::scaled_use_case1(l3_bytes, kind);
    run_workload(&cfg, |sink| kernel.generate(params, sink))
}

/// Runs one use-case-1 kernel with a per-core bandwidth override (Fig 6).
pub fn run_kernel_bw(
    kernel: PolybenchKernel,
    params: &KernelParams,
    l3_bytes: u64,
    kind: SystemKind,
    per_core_gbps: f64,
) -> RunReport {
    let cfg =
        SystemConfig::scaled_use_case1(l3_bytes, kind).with_per_core_bandwidth(per_core_gbps);
    run_workload(&cfg, |sink| kernel.generate(params, sink))
}

/// The three systems compared in Figs 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uc2System {
    /// Strengthened baseline (§6.3): best of the nine address mappings,
    /// randomized VA→PA, prefetcher enabled only if it helps.
    Baseline,
    /// XMem-guided OS placement (§6.2) — a software-only use of XMem: the
    /// cache hierarchy stays at baseline; only the frame policy changes.
    Xmem,
    /// Perfect row-buffer locality (the upper bound of Fig 7).
    IdealRbl,
}

impl Uc2System {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Uc2System::Baseline => "Baseline",
            Uc2System::Xmem => "XMem",
            Uc2System::IdealRbl => "Ideal",
        }
    }
}

/// Physical memory for use-case-2 runs (footprints are ~10–20 MB).
const UC2_PHYS: u64 = 64 << 20;

fn uc2_config(
    mapping: AddressMapping,
    policy: FramePolicyKind,
    ideal: bool,
    prefetcher: bool,
) -> SystemConfig {
    let mut cfg = SystemConfig::westmere_like();
    cfg.phys_bytes = UC2_PHYS;
    cfg.dram = dram_sim::DramConfig::ddr3_1066(3.6).with_capacity(UC2_PHYS);
    cfg.mapping = mapping;
    cfg.frame_policy = policy;
    cfg.ideal_rbl = ideal;
    cfg.hierarchy.stride_prefetcher = prefetcher;
    cfg
}

fn best_of(configs: impl IntoIterator<Item = SystemConfig>, w: &PlacementWorkload) -> RunReport {
    configs
        .into_iter()
        .map(|cfg| run_workload(&cfg, |sink| w.generate(sink)))
        .min_by_key(|r| r.cycles())
        .expect("at least one configuration")
}

/// Runs one placement workload under the given system (Figs 7 and 8).
///
/// Per §6.3, every system takes the best of prefetcher-on/off; the baseline
/// additionally takes the best of all nine address mappings.
pub fn run_placement(w: &PlacementWorkload, system: Uc2System) -> RunReport {
    match system {
        Uc2System::Baseline => best_of(
            AddressMapping::all_schemes().into_iter().flat_map(|m| {
                [true, false].map(|pf| {
                    uc2_config(m, FramePolicyKind::Randomized { seed: 0xA70 }, false, pf)
                })
            }),
            w,
        ),
        Uc2System::Xmem => best_of(
            // The OS places at data-structure granularity, which requires a
            // mapping whose bank bits sit above the page offset: the
            // bank-partitioned scheme5.
            [true, false].map(|pf| {
                uc2_config(
                    AddressMapping::scheme5(),
                    FramePolicyKind::XmemPlacement,
                    false,
                    pf,
                )
            }),
            w,
        ),
        Uc2System::IdealRbl => best_of(
            [true, false].map(|pf| {
                uc2_config(
                    AddressMapping::scheme1(),
                    FramePolicyKind::Randomized { seed: 0xA70 },
                    true,
                    pf,
                )
            }),
            w,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_kernel_params() -> KernelParams {
        KernelParams {
            n: 24,
            tile_bytes: 2048,
            steps: 2,
            reuse: 200,
        }
    }

    #[test]
    fn xmem_helps_oversized_tiles() {
        // The headline Fig 4 effect at one point: a tile ~2× the L3 thrashes
        // the baseline; XMem pins + prefetches and runs faster.
        let p = KernelParams {
            n: 96,
            tile_bytes: 64 << 10, // 64 KB tile vs 32 KB L3
            steps: 2,
            reuse: 200,
        };
        let l3 = 32 << 10;
        let base = run_kernel(PolybenchKernel::Gemm, &p, l3, SystemKind::Baseline);
        let xmem = run_kernel(PolybenchKernel::Gemm, &p, l3, SystemKind::Xmem);
        assert!(
            xmem.cycles() < base.cycles(),
            "xmem {} vs baseline {}",
            xmem.cycles(),
            base.cycles()
        );
    }

    #[test]
    fn bandwidth_reduction_slows_everything() {
        let p = tiny_kernel_params();
        let fast = run_kernel_bw(PolybenchKernel::Mvt, &p, 32 << 10, SystemKind::Baseline, 2.0);
        let slow = run_kernel_bw(PolybenchKernel::Mvt, &p, 32 << 10, SystemKind::Baseline, 0.5);
        assert!(slow.cycles() >= fast.cycles());
    }

    #[test]
    fn ideal_rbl_not_slower_than_baseline() {
        let mut w = PlacementWorkload::by_name("lbm").unwrap();
        w.accesses = 20_000;
        let base = run_placement(&w, Uc2System::Baseline);
        let ideal = run_placement(&w, Uc2System::IdealRbl);
        // Ideal has perfect row locality: it must not lose.
        assert!(
            ideal.cycles() <= base.cycles() * 101 / 100,
            "ideal {} vs base {}",
            ideal.cycles(),
            base.cycles()
        );
        assert!(ideal.dram.row_hit_rate() > 0.99);
    }

    #[test]
    fn uc2_systems_run_all_three() {
        let mut w = PlacementWorkload::by_name("kmeans").unwrap();
        w.accesses = 10_000;
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            let r = run_placement(&w, sys);
            assert!(r.cycles() > 0, "{:?}", sys);
            assert!(r.dram.accesses() > 0, "{:?} never reached DRAM", sys);
        }
    }
}
