//! Full-system configuration (Table 3 of the paper, plus the scaled
//! variants the harness uses — see DESIGN.md's scaling note).

use cache_sim::{BusConfig, CacheConfig, HierarchyConfig, ReplacementPolicy, XmemMode};
use cpu_sim::CoreConfig;
use dram_sim::{AddressMapping, DramConfig};
use std::fmt;

/// Which of the paper's evaluated systems to model (use case 1, §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// DRRIP + multi-stride prefetching, no XMem.
    Baseline,
    /// XMem-guided prefetching only (DRRIP cache management).
    XmemPref,
    /// Full XMem: pinning + guided prefetching.
    Xmem,
}

impl SystemKind {
    /// The corresponding hierarchy mode.
    pub fn xmem_mode(self) -> XmemMode {
        match self {
            SystemKind::Baseline => XmemMode::Off,
            SystemKind::XmemPref => XmemMode::PrefetchOnly,
            SystemKind::Xmem => XmemMode::Full,
        }
    }

    /// Whether the XMem machinery (AMU, PATs) is active at all.
    pub fn xmem_enabled(self) -> bool {
        !matches!(self, SystemKind::Baseline)
    }

    /// Display name matching the paper's figures.
    #[deprecated(note = "use the Display impl: `format!(\"{kind}\")`")]
    pub fn name(self) -> &'static str {
        match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::XmemPref => "XMem-Pref",
            SystemKind::Xmem => "XMem",
        }
    }
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::XmemPref => "XMem-Pref",
            SystemKind::Xmem => "XMem",
        })
    }
}

/// Frame-allocation policy selection (use case 2 systems, §6.3–6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePolicyKind {
    /// First-free frames (identity-like; used for use case 1 where
    /// placement is not under study).
    Sequential,
    /// Randomized VA→PA (the strengthened baseline of §6.3).
    Randomized {
        /// RNG seed.
        seed: u64,
    },
    /// The §6.2 XMem placement algorithm.
    XmemPlacement,
}

/// A complete system configuration.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Core model parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Simulated physical memory size.
    pub phys_bytes: u64,
    /// OS frame policy.
    pub frame_policy: FramePolicyKind,
    /// Model the Fig 7 "Ideal" DRAM (every access a row hit).
    pub ideal_rbl: bool,
    /// Optional TLB in front of translation (None = free translation, the
    /// default so the figure experiments isolate memory-system effects; a
    /// TLB affects Baseline and XMem identically).
    pub tlb: Option<os_sim::tlb::TlbConfig>,
}

impl SystemConfig {
    /// The Table 3 configuration, full size: 3.6 GHz 4-wide OOO core,
    /// 32 KB L1 / 128 KB L2 / 1 MB L3 slice, DDR3-1066 with 2 channels.
    pub fn westmere_like() -> Self {
        let phys_bytes = 256 << 20;
        SystemConfig {
            core: CoreConfig::westmere_like(),
            hierarchy: HierarchyConfig::westmere_like(),
            dram: DramConfig::ddr3_1066(3.6).with_capacity(phys_bytes),
            mapping: AddressMapping::scheme1(),
            phys_bytes,
            frame_policy: FramePolicyKind::Sequential,
            ideal_rbl: false,
            tlb: None,
        }
    }

    /// The scaled use-case-1 configuration: same latencies and policies as
    /// Table 3 with capacities shrunk ~8× (8 KB L1, 16 KB L2, `l3_bytes`
    /// L3) so that the tile-size sweep brackets the L3 within millisecond
    /// simulations. Ratios (tile vs. cache) are what Fig 4–6 depend on.
    pub fn scaled_use_case1(l3_bytes: u64, kind: SystemKind) -> Self {
        let phys_bytes = 64 << 20;
        let hierarchy = HierarchyConfig {
            l1: CacheConfig {
                size_bytes: 8 << 10,
                ways: 4,
                line_bytes: 64,
                latency: 4,
                policy: ReplacementPolicy::Lru,
            },
            l2: CacheConfig {
                size_bytes: 16 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 8,
                policy: ReplacementPolicy::Drrip,
            },
            l3: CacheConfig {
                size_bytes: l3_bytes,
                ways: 16,
                line_bytes: 64,
                latency: 27,
                policy: ReplacementPolicy::Drrip,
            },
            stride_prefetcher: true,
            stride_streams: 16,
            prefetch_degree: 2,
            xmem_prefetch_degree: 4,
            xmem: kind.xmem_mode(),
        };
        SystemConfig {
            core: CoreConfig::westmere_like(),
            hierarchy,
            // Table 3's 2.1 GB/s/core is the 8-core share of 17 GB/s; a
            // single simulated core can burst to about twice its share.
            dram: DramConfig::ddr3_1066(3.6)
                .with_capacity(phys_bytes)
                .with_channel_bandwidth(4.2 / 2.0, 3.6),
            mapping: AddressMapping::scheme1(),
            phys_bytes,
            frame_policy: FramePolicyKind::Sequential,
            ideal_rbl: false,
            tlb: None,
        }
    }

    /// A builder seeded with the full-size [`SystemConfig::westmere_like`]
    /// machine. Experiment code should derive variant configurations
    /// through this instead of mutating public fields:
    ///
    /// ```
    /// use dram_sim::AddressMapping;
    /// use xmem_sim::{FramePolicyKind, SystemConfig};
    ///
    /// let cfg = SystemConfig::builder()
    ///     .phys_bytes(64 << 20)
    ///     .mapping(AddressMapping::scheme5())
    ///     .frame_policy(FramePolicyKind::XmemPlacement)
    ///     .stride_prefetcher(false)
    ///     .build();
    /// assert_eq!(cfg.phys_bytes, 64 << 20);
    /// assert_eq!(cfg.mapping, AddressMapping::scheme5());
    /// ```
    pub fn builder() -> SystemConfigBuilder {
        SystemConfigBuilder {
            config: SystemConfig::westmere_like(),
        }
    }

    /// A builder seeded with `self`, for deriving variants of an existing
    /// configuration (e.g. the scaled machines).
    pub fn to_builder(self) -> SystemConfigBuilder {
        SystemConfigBuilder { config: self }
    }

    /// Enables a TLB with the default geometry (64 entries, 30-cycle walk).
    pub fn with_tlb(mut self) -> Self {
        self.tlb = Some(os_sim::tlb::TlbConfig::default());
        self
    }

    /// Adjusts per-core memory bandwidth (Fig 6: 2 / 1 / 0.5 GB/s).
    pub fn with_per_core_bandwidth(mut self, gbps: f64) -> Self {
        self.dram = self
            .dram
            .with_channel_bandwidth(gbps / self.dram.channels as f64, 3.6);
        self
    }
}

/// Step-by-step construction of a [`SystemConfig`] (see
/// [`SystemConfig::builder`]). Setters keep dependent fields consistent:
/// [`phys_bytes`](Self::phys_bytes) resizes the DRAM capacity to match.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfigBuilder {
    config: SystemConfig,
}

impl SystemConfigBuilder {
    /// Sets the physical memory size, resizing DRAM capacity to match.
    pub fn phys_bytes(mut self, bytes: u64) -> Self {
        self.config.phys_bytes = bytes;
        self.config.dram = self.config.dram.with_capacity(bytes);
        self
    }

    /// Sets the DRAM address mapping scheme.
    pub fn mapping(mut self, mapping: AddressMapping) -> Self {
        self.config.mapping = mapping;
        self
    }

    /// Sets the OS frame-allocation policy.
    pub fn frame_policy(mut self, policy: FramePolicyKind) -> Self {
        self.config.frame_policy = policy;
        self
    }

    /// Models the Fig 7 "Ideal" DRAM (every access a row hit).
    pub fn ideal_rbl(mut self, ideal: bool) -> Self {
        self.config.ideal_rbl = ideal;
        self
    }

    /// Enables or disables the baseline stride prefetcher.
    pub fn stride_prefetcher(mut self, on: bool) -> Self {
        self.config.hierarchy.stride_prefetcher = on;
        self
    }

    /// Sets the XMem operating mode via a [`SystemKind`].
    pub fn system(mut self, kind: SystemKind) -> Self {
        self.config.hierarchy.xmem = kind.xmem_mode();
        self
    }

    /// Sets the full DRAM timing/geometry directly.
    pub fn dram(mut self, dram: DramConfig) -> Self {
        self.config.dram = dram;
        self
    }

    /// Adjusts per-core memory bandwidth (Fig 6: 2 / 1 / 0.5 GB/s).
    pub fn per_core_gbps(mut self, gbps: f64) -> Self {
        self.config = self.config.with_per_core_bandwidth(gbps);
        self
    }

    /// Enables a TLB with the default geometry.
    pub fn tlb(mut self) -> Self {
        self.config = self.config.with_tlb();
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SystemConfig {
        self.config
    }
}

/// Coherence protocol selection for a multi-core machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceMode {
    /// No coherence: private hierarchies never observe each other's
    /// writes. Correct only for disjoint working sets (the original
    /// co-run model); kept as the default so existing scenarios stay
    /// byte-identical.
    #[default]
    None,
    /// MESI snooping over a shared bus (see `cache_sim::coherence` and
    /// DESIGN.md "Coherence").
    Mesi,
}

impl fmt::Display for CoherenceMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoherenceMode::None => "none",
            CoherenceMode::Mesi => "mesi",
        })
    }
}

/// Configuration of a multi-core machine: private L1/L2 per core, shared
/// L3 and DRAM (the Table 3 shape; see [`crate::multicore`]).
#[derive(Debug, Clone, Copy)]
pub struct MultiCoreConfig {
    /// Number of cores (each replays one workload log).
    pub cores: usize,
    /// Core model parameters (identical cores).
    pub core: CoreConfig,
    /// Private L1 per core.
    pub l1: CacheConfig,
    /// Private L2 per core.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Enable the per-core stride prefetchers.
    pub stride_prefetcher: bool,
    /// Streams per stride prefetcher.
    pub stride_streams: usize,
    /// Stride prefetch degree.
    pub prefetch_degree: usize,
    /// XMem guided prefetch degree.
    pub xmem_prefetch_degree: usize,
    /// XMem operating mode.
    pub xmem: XmemMode,
    /// Shared DRAM timing/geometry.
    pub dram: DramConfig,
    /// Physical address mapping.
    pub mapping: AddressMapping,
    /// Simulated physical memory.
    pub phys_bytes: u64,
    /// OS frame policy (shared allocator; the XMem policy sees the merged
    /// atom set of all co-running workloads, per §6.2).
    pub frame_policy: FramePolicyKind,
    /// Coherence protocol over the private hierarchies.
    pub coherence: CoherenceMode,
    /// Snooping-bus timing (only consulted under [`CoherenceMode::Mesi`]).
    pub bus: BusConfig,
    /// Under MESI, exempt read-write shared (migratory) atoms from L3
    /// pinning so the pin budget goes to read-mostly/private data whose
    /// lines actually stay put (see DESIGN.md "Coherence").
    pub coherence_aware_pinning: bool,
}

impl MultiCoreConfig {
    /// The full-size Table 3 machine with `cores` cores: 32 KB L1 +
    /// 128 KB L2 private, a shared L3 of 1 MB per core, DDR3-1066.
    pub fn westmere_like(cores: usize) -> Self {
        let phys_bytes = 256 << 20;
        let base = HierarchyConfig::westmere_like();
        MultiCoreConfig {
            cores,
            core: CoreConfig::westmere_like(),
            l1: base.l1,
            l2: base.l2,
            l3: base.l3.with_size(cores as u64 * (1 << 20)),
            stride_prefetcher: true,
            stride_streams: 16,
            prefetch_degree: 2,
            xmem_prefetch_degree: 4,
            xmem: XmemMode::Off,
            dram: DramConfig::ddr3_1066(3.6).with_capacity(phys_bytes),
            mapping: AddressMapping::scheme1(),
            phys_bytes,
            frame_policy: FramePolicyKind::Sequential,
            coherence: CoherenceMode::None,
            bus: BusConfig::default(),
            coherence_aware_pinning: true,
        }
    }

    /// The scaled co-run machine matching
    /// [`SystemConfig::scaled_use_case1`]: the shared L3 is `l3_bytes`
    /// *total* (co-runners genuinely compete for it).
    pub fn scaled_corun(cores: usize, l3_bytes: u64, kind: SystemKind) -> Self {
        let single = SystemConfig::scaled_use_case1(l3_bytes, kind);
        MultiCoreConfig {
            cores,
            core: single.core,
            l1: single.hierarchy.l1,
            l2: single.hierarchy.l2,
            l3: single.hierarchy.l3,
            stride_prefetcher: single.hierarchy.stride_prefetcher,
            stride_streams: single.hierarchy.stride_streams,
            prefetch_degree: single.hierarchy.prefetch_degree,
            xmem_prefetch_degree: single.hierarchy.xmem_prefetch_degree,
            xmem: kind.xmem_mode(),
            dram: single.dram,
            mapping: single.mapping,
            phys_bytes: single.phys_bytes,
            frame_policy: single.frame_policy,
            coherence: CoherenceMode::None,
            bus: BusConfig::default(),
            coherence_aware_pinning: true,
        }
    }

    /// Derives a MESI-coherent variant of this machine (default bus
    /// timing; see [`CoherenceMode`]).
    pub fn with_coherence(mut self, mode: CoherenceMode) -> Self {
        self.coherence = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_map_to_modes() {
        assert_eq!(SystemKind::Baseline.xmem_mode(), XmemMode::Off);
        assert_eq!(SystemKind::XmemPref.xmem_mode(), XmemMode::PrefetchOnly);
        assert_eq!(SystemKind::Xmem.xmem_mode(), XmemMode::Full);
        assert!(!SystemKind::Baseline.xmem_enabled());
        assert!(SystemKind::Xmem.xmem_enabled());
    }

    #[test]
    fn scaled_config_geometry_is_valid() {
        for l3 in [32 << 10, 64 << 10, 128 << 10, 256 << 10] {
            let cfg = SystemConfig::scaled_use_case1(l3, SystemKind::Xmem);
            assert!(cfg.hierarchy.l3.sets() >= 32);
            assert!(cfg.hierarchy.l1.sets() > 0);
        }
    }

    #[test]
    fn bandwidth_knob_slows_bus() {
        let fast = SystemConfig::scaled_use_case1(128 << 10, SystemKind::Baseline)
            .with_per_core_bandwidth(2.0);
        let slow = SystemConfig::scaled_use_case1(128 << 10, SystemKind::Baseline)
            .with_per_core_bandwidth(0.5);
        assert!(slow.dram.bus_cycles > fast.dram.bus_cycles);
    }
}
