//! The MESI coherence engine: drives the pure protocol of
//! [`cache_sim::coherence`] over real per-core L1/L2 caches and a timed
//! snooping bus.
//!
//! Each core's *private domain* is its L1+L2 pair; a line's domain state is
//! its L1 MESI state when L1 holds it, else its L2 state (the two lanes are
//! kept in lockstep whenever both levels hold the line). The hierarchy is
//! non-inclusive: an L2 eviction leaves any L1 copy (and its state) in
//! place, and a line only leaves the domain — writing back if Modified —
//! when neither level holds it anymore.
//!
//! [`mesi_access`] performs one timed access: probe L1, then L2, then
//! broadcast on the bus and snoop every peer domain. It returns what the
//! *caller* must settle — coherence writebacks to sink toward memory, and
//! whether the line must come from memory at all (peers with an M/E copy
//! supply it cache-to-cache instead). `sim::multicore` sinks writebacks
//! into the shared L3/DRAM; [`CoherentCluster`] — the protocol-test
//! harness — sinks them into a flat value-tracked memory so litmus and
//! fuzz tests can assert the SWMR and data-value invariants after every
//! single transaction.

use cache_sim::cache::{Cache, Eviction, InsertPriority};
use cache_sim::coherence::{local_next, snoop_transition, BusOp, MesiState, SnoopAction, SnoopBus};
use cache_sim::config::CacheConfig;
use cache_sim::{BusConfig, BusStats, ReplacementPolicy};
use std::collections::{BTreeMap, BTreeSet};

/// The per-core private domains and the bus, bundled for [`mesi_access`].
#[derive(Debug)]
pub struct MesiDomains<'a> {
    /// Per-core private L1s.
    pub l1s: &'a mut [Cache],
    /// Per-core private L2s.
    pub l2s: &'a mut [Cache],
    /// The shared snooping bus.
    pub bus: &'a mut SnoopBus,
    /// L1 hit latency.
    pub l1_lat: u64,
    /// L2 hit latency.
    pub l2_lat: u64,
    /// Cache line size (power of two).
    pub line_bytes: u64,
}

/// The outcome of one coherent access, including everything the caller
/// must settle against its memory model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoherentAccess {
    /// Cycles spent in the private levels and on the bus. When
    /// [`from_memory`](Self::from_memory) is set the caller adds its
    /// L3/DRAM (or flat-memory) latency on top.
    pub latency: u64,
    /// The line was supplied by memory: no peer held it in M/E. When
    /// false, a cache-to-cache transfer supplied it (latency included).
    pub from_memory: bool,
    /// `(core, line)` pairs whose dirty data must reach memory: M lines
    /// flushed by a snoop, and M lines evicted out of a private domain.
    pub writebacks: Vec<(usize, u64)>,
    /// `(core, line)` pairs that left their domain entirely (snoop
    /// invalidations and clean/dirty eviction drops).
    pub invalidated: Vec<(usize, u64)>,
    /// The peer that supplied the line cache-to-cache, if any.
    pub supplier: Option<usize>,
    /// The requester's final state for the line.
    pub state: MesiState,
}

/// Snoops every peer domain for `line` on observing `op`, applying the
/// protocol transitions. Returns whether any peer (still) holds the line.
fn snoop_peers(
    d: &mut MesiDomains<'_>,
    requester: usize,
    line: u64,
    op: BusOp,
    acc: &mut CoherentAccess,
) -> bool {
    let mut sharers = false;
    for j in 0..d.l1s.len() {
        if j == requester {
            continue;
        }
        let s1 = d.l1s[j].coh_state(line);
        let state = if s1 != MesiState::Invalid {
            s1
        } else {
            d.l2s[j].coh_state(line)
        };
        if state == MesiState::Invalid {
            continue;
        }
        let Some((next, action)) = snoop_transition(state, op) else {
            debug_assert!(false, "SWMR violation: core {j} holds {state} on {op:?}");
            continue;
        };
        match action {
            SnoopAction::None => {}
            SnoopAction::Supply => acc.supplier = Some(j),
            SnoopAction::FlushSupply => {
                acc.supplier = Some(j);
                acc.writebacks.push((j, line));
                d.bus.note_writeback();
            }
        }
        if next == MesiState::Invalid {
            d.l1s[j].snoop_invalidate(line);
            d.l2s[j].snoop_invalidate(line);
            d.bus.note_invalidation();
            acc.invalidated.push((j, line));
        } else if next != state {
            d.l1s[j].set_coh_state(line, next);
            d.l2s[j].set_coh_state(line, next);
        }
        sharers = true;
    }
    sharers
}

/// Settles a private-level eviction: if the victim still lives in the
/// domain's other level nothing happens (its state rides along there);
/// otherwise the line leaves the domain, writing back if it was Modified.
fn settle_eviction(
    core: usize,
    ev: Eviction,
    still_held: bool,
    bus: &mut SnoopBus,
    acc: &mut CoherentAccess,
) {
    if still_held {
        return;
    }
    if ev.dirty {
        acc.writebacks.push((core, ev.addr));
        bus.note_writeback();
    }
    acc.invalidated.push((core, ev.addr));
}

/// One coherent access by `core` to `pa` at time `now`: the requester-side
/// and snooper-side MESI transitions of `cache_sim::coherence`, played out
/// over the real caches with bus timing.
pub fn mesi_access(
    d: &mut MesiDomains<'_>,
    core: usize,
    pa: u64,
    is_write: bool,
    now: u64,
) -> CoherentAccess {
    let line = pa & !(d.line_bytes - 1);
    let mut acc = CoherentAccess {
        latency: 0,
        from_memory: false,
        writebacks: Vec::new(),
        invalidated: Vec::new(),
        supplier: None,
        state: MesiState::Invalid,
    };

    // ── L1 hit ──────────────────────────────────────────────────────────
    if d.l1s[core].probe(pa, is_write) {
        let state = d.l1s[core].coh_state(pa);
        debug_assert_ne!(state, MesiState::Invalid, "resident line without state");
        // `others` only matters from I, which a hit excludes.
        let (next, bus_op) = local_next(state, is_write, false);
        let mut lat = d.l1_lat;
        if let Some(op) = bus_op {
            debug_assert_eq!(op, BusOp::Upgr, "only S→M upgrades broadcast on a hit");
            lat += d.bus.transact(op, now);
            snoop_peers(d, core, line, op, &mut acc);
        }
        if next != state {
            d.l1s[core].set_coh_state(line, next);
            d.l2s[core].set_coh_state(line, next);
        }
        acc.latency = lat;
        acc.state = next;
        return acc;
    }

    // ── L2 hit: state lives in L2; refill L1 alongside ──────────────────
    if d.l2s[core].probe(pa, false) {
        let state = d.l2s[core].coh_state(pa);
        debug_assert_ne!(state, MesiState::Invalid, "resident line without state");
        let (next, bus_op) = local_next(state, is_write, false);
        let mut lat = d.l1_lat + d.l2_lat;
        if let Some(op) = bus_op {
            debug_assert_eq!(op, BusOp::Upgr, "only S→M upgrades broadcast on a hit");
            lat += d.bus.transact(op, now);
            snoop_peers(d, core, line, op, &mut acc);
        }
        d.l2s[core].set_coh_state(line, next);
        let ev = d.l1s[core].fill(line, false, InsertPriority::Normal);
        if let Some(ev) = ev {
            let still = d.l2s[core].contains(ev.addr);
            settle_eviction(core, ev, still, d.bus, &mut acc);
        }
        d.l1s[core].set_coh_state(line, next);
        acc.latency = lat;
        acc.state = next;
        return acc;
    }

    // ── private miss: broadcast, snoop, fill both levels ────────────────
    let op = if is_write { BusOp::RdX } else { BusOp::Rd };
    let mut lat = d.l1_lat + d.l2_lat + d.bus.transact(op, now);
    let sharers = snoop_peers(d, core, line, op, &mut acc);
    let (next, _) = local_next(MesiState::Invalid, is_write, sharers);
    if acc.supplier.is_some() {
        lat += d.bus.cache_to_cache();
    } else {
        acc.from_memory = true;
    }
    let ev = d.l2s[core].fill(line, false, InsertPriority::Normal);
    if let Some(ev) = ev {
        let still = d.l1s[core].contains(ev.addr);
        settle_eviction(core, ev, still, d.bus, &mut acc);
    }
    d.l2s[core].set_coh_state(line, next);
    let ev = d.l1s[core].fill(line, false, InsertPriority::Normal);
    if let Some(ev) = ev {
        let still = d.l2s[core].contains(ev.addr);
        settle_eviction(core, ev, still, d.bus, &mut acc);
    }
    d.l1s[core].set_coh_state(line, next);
    acc.latency = lat;
    acc.state = next;
    acc
}

/// A self-contained coherent multicore cluster over a flat value-tracked
/// memory — the protocol-verification harness behind the litmus, fuzz, and
/// enumeration suites in `crates/sim/tests/coherence.rs`.
///
/// Values are tracked at line granularity (one `u64` per line): `memory`
/// models DRAM, `copies` every cached line's current value per core. After
/// any operation [`CoherentCluster::check`] can audit the two protocol
/// invariants:
///
/// * **SWMR** — at most one domain holds a line in M/E, and then no other
///   domain holds it at all;
/// * **data-value** — every clean (E/S) copy equals memory, and reads
///   always return the most recently written value (the shadow-oracle fuzz
///   test closes the loop end-to-end).
#[derive(Debug)]
pub struct CoherentCluster {
    l1s: Vec<Cache>,
    l2s: Vec<Cache>,
    bus: SnoopBus,
    l1_lat: u64,
    l2_lat: u64,
    mem_lat: u64,
    line_bytes: u64,
    memory: BTreeMap<u64, u64>,
    copies: BTreeMap<(usize, u64), u64>,
}

impl CoherentCluster {
    /// A cluster of `cores` domains with the given cache geometries.
    pub fn new(
        cores: usize,
        l1: CacheConfig,
        l2: CacheConfig,
        bus: BusConfig,
        mem_lat: u64,
    ) -> Self {
        CoherentCluster {
            l1s: (0..cores).map(|_| Cache::new(l1)).collect(),
            l2s: (0..cores).map(|_| Cache::new(l2)).collect(),
            bus: SnoopBus::new(bus),
            l1_lat: l1.latency,
            l2_lat: l2.latency,
            mem_lat,
            line_bytes: l1.line_bytes,
            memory: BTreeMap::new(),
            copies: BTreeMap::new(),
        }
    }

    /// A small cluster (1 KB 2-way L1, 2 KB 4-way L2, LRU) whose conflict
    /// evictions are easy to provoke — the litmus/fuzz default.
    pub fn small(cores: usize) -> Self {
        let l1 = CacheConfig {
            size_bytes: 1 << 10,
            ways: 2,
            line_bytes: 64,
            latency: 2,
            policy: ReplacementPolicy::Lru,
        };
        let l2 = CacheConfig {
            size_bytes: 2 << 10,
            ways: 4,
            line_bytes: 64,
            latency: 6,
            policy: ReplacementPolicy::Lru,
        };
        CoherentCluster::new(cores, l1, l2, BusConfig::default(), 100)
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1s.len()
    }

    fn line_of(&self, addr: u64) -> u64 {
        addr & !(self.line_bytes - 1)
    }

    /// One access, with the writeback/invalidation settlement the caller
    /// of [`mesi_access`] owes: flushed M lines update `memory` *before*
    /// dropped copies leave `copies`.
    fn settle_access(
        &mut self,
        core: usize,
        addr: u64,
        is_write: bool,
        now: u64,
    ) -> CoherentAccess {
        let mut d = MesiDomains {
            l1s: &mut self.l1s,
            l2s: &mut self.l2s,
            bus: &mut self.bus,
            l1_lat: self.l1_lat,
            l2_lat: self.l2_lat,
            line_bytes: self.line_bytes,
        };
        let acc = mesi_access(&mut d, core, addr, is_write, now);
        for &(j, line) in &acc.writebacks {
            if let Some(&v) = self.copies.get(&(j, line)) {
                self.memory.insert(line, v);
            }
        }
        for &(j, line) in &acc.invalidated {
            self.copies.remove(&(j, line));
        }
        acc
    }

    /// A load by `core`: returns `(value, latency)`.
    pub fn read(&mut self, core: usize, addr: u64, now: u64) -> (u64, u64) {
        let line = self.line_of(addr);
        let had = self.copies.contains_key(&(core, line));
        let acc = self.settle_access(core, addr, false, now);
        let value = if had {
            self.copies[&(core, line)]
        } else {
            // Misses read memory *after* settlement: a snooped M supplier
            // has just flushed, so memory holds the up-to-date value for
            // both the cache-to-cache and the from-memory path.
            let v = self.memory.get(&line).copied().unwrap_or(0);
            self.copies.insert((core, line), v);
            v
        };
        let mem = if acc.from_memory { self.mem_lat } else { 0 };
        (value, acc.latency + mem)
    }

    /// A store of `value` by `core`: returns the latency.
    pub fn write(&mut self, core: usize, addr: u64, value: u64, now: u64) -> u64 {
        let line = self.line_of(addr);
        let acc = self.settle_access(core, addr, true, now);
        debug_assert_eq!(acc.state, MesiState::Modified, "a store must end in M");
        self.copies.insert((core, line), value);
        let mem = if acc.from_memory { self.mem_lat } else { 0 };
        acc.latency + mem
    }

    /// The domain state of `core` for the line holding `addr`.
    pub fn state(&self, core: usize, addr: u64) -> MesiState {
        let s = self.l1s[core].coh_state(addr);
        if s != MesiState::Invalid {
            s
        } else {
            self.l2s[core].coh_state(addr)
        }
    }

    /// The memory image of the line holding `addr` (0 if never written
    /// back).
    pub fn memory_value(&self, addr: u64) -> u64 {
        self.memory.get(&self.line_of(addr)).copied().unwrap_or(0)
    }

    /// `core`'s cached value for the line holding `addr`, if resident.
    pub fn cached_value(&self, core: usize, addr: u64) -> Option<u64> {
        self.copies.get(&(core, self.line_of(addr))).copied()
    }

    /// Accumulated bus traffic.
    pub fn bus_stats(&self) -> BusStats {
        self.bus.stats()
    }

    /// Per-core L1 snoop-invalidation count (for litmus assertions).
    pub fn l1_snoop_invalidations(&self, core: usize) -> u64 {
        self.l1s[core].stats().snoop_invalidations
    }

    /// Audits the protocol invariants over every tracked line; returns the
    /// first violation as an error string.
    pub fn check(&self) -> Result<(), String> {
        let lines: BTreeSet<u64> = self.copies.keys().map(|&(_, l)| l).collect();
        for &line in &lines {
            let mut holders = 0usize;
            let mut exclusive = 0usize;
            for j in 0..self.cores() {
                let s1 = self.l1s[j].coh_state(line);
                let s2 = self.l2s[j].coh_state(line);
                if self.l1s[j].contains(line) && s1 == MesiState::Invalid {
                    return Err(format!(
                        "core {j} line {line:#x}: resident in L1 without state"
                    ));
                }
                if s1 != MesiState::Invalid && s2 != MesiState::Invalid && s1 != s2 {
                    return Err(format!(
                        "core {j} line {line:#x}: L1 state {s1} != L2 state {s2}"
                    ));
                }
                let state = self.state(j, line);
                let copy = self.copies.get(&(j, line));
                if copy.is_some() && state == MesiState::Invalid {
                    return Err(format!("core {j} line {line:#x}: copy tracked but Invalid"));
                }
                if copy.is_none() && state != MesiState::Invalid {
                    return Err(format!(
                        "core {j} line {line:#x}: state {state} but no copy"
                    ));
                }
                if state != MesiState::Invalid {
                    holders += 1;
                }
                if state.exclusive() {
                    exclusive += 1;
                }
                if matches!(state, MesiState::Shared | MesiState::Exclusive) {
                    let mem = self.memory.get(&line).copied().unwrap_or(0);
                    // simlint: allow(unwrap, reason = "copy presence just verified against the state")
                    let v = *copy.expect("clean holder has a copy");
                    if v != mem {
                        return Err(format!(
                            "core {j} line {line:#x}: clean copy {v} != memory {mem}"
                        ));
                    }
                }
            }
            if exclusive > 1 {
                return Err(format!("line {line:#x}: {exclusive} M/E holders (SWMR)"));
            }
            if exclusive == 1 && holders > 1 {
                return Err(format!(
                    "line {line:#x}: M/E holder coexists with {} other copies (SWMR)",
                    holders - 1
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_then_write_single_core() {
        let mut c = CoherentCluster::small(2);
        let (v, _) = c.read(0, 0x1000, 0);
        assert_eq!(v, 0);
        assert_eq!(c.state(0, 0x1000), MesiState::Exclusive);
        c.write(0, 0x1000, 7, 10);
        // Silent E→M upgrade: still exactly one bus transaction (the Rd).
        assert_eq!(c.bus_stats().transactions(), 1);
        assert_eq!(c.state(0, 0x1000), MesiState::Modified);
        assert_eq!(c.read(0, 0x1000, 20).0, 7);
        c.check().unwrap();
    }

    #[test]
    fn two_readers_share() {
        let mut c = CoherentCluster::small(2);
        c.read(0, 0x40, 0);
        c.read(1, 0x40, 10);
        assert_eq!(c.state(0, 0x40), MesiState::Shared);
        assert_eq!(c.state(1, 0x40), MesiState::Shared);
        assert_eq!(c.bus_stats().c2c_transfers, 1);
        c.check().unwrap();
    }
}
