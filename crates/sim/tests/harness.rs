//! Integration tests for the experiment-sweep engine: the parallel pool
//! must be indistinguishable from a serial loop, and the structured
//! reports must survive a round trip through their serialized forms.

use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_sim::{
    placement_specs, point_file_name, CsvSink, JsonSink, JsonValue, KernelRun, ReportSink,
    RunOutcome, RunRecord, RunSpec, Sweep, SystemConfig, SystemKind, Uc2System, WorkloadSpec,
    JSON_SCHEMA,
};

fn kernel_grid() -> Vec<RunSpec> {
    let p = KernelParams {
        n: 32,
        tile_bytes: 8 << 10,
        steps: 3,
        reuse: 200,
    };
    let mut specs = Vec::new();
    for kernel in [
        PolybenchKernel::Gemm,
        PolybenchKernel::Syrk,
        PolybenchKernel::Jacobi2d,
        PolybenchKernel::Mvt,
    ] {
        for kind in [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem] {
            specs.push(KernelRun::new(kernel, p).system(kind).spec());
        }
    }
    specs
}

/// The tentpole guarantee: running a sweep on the worker pool yields the
/// exact same `RunReport`s, in the exact same order, as running it one
/// spec at a time. Every stats struct is compared via `PartialEq`.
#[test]
fn parallel_sweep_equals_serial_sweep() {
    let serial = Sweep::new(kernel_grid()).workers(1).run();
    let parallel = Sweep::new(kernel_grid()).workers(8).run();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.report, p.report, "{}: reports diverge", s.label);
    }
}

/// The parallel placement engine must pick the same §6.3 winner as the
/// old serial `best_of` loop: iterate the grid in order, keep the first
/// point with the minimum cycle count.
#[test]
fn placement_best_matches_serial_best_of() {
    let mut w = PlacementWorkload::by_name("milc").expect("milc exists");
    w.accesses = 25_000;
    for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
        let grid = placement_specs(&w, sys);
        // The old bespoke loop: serial execution, first-minimum wins.
        let serial: Vec<RunRecord> = Sweep::new(placement_specs(&w, sys)).workers(1).run();
        let serial_best = serial
            .iter()
            .min_by_key(|r| r.report.cycles())
            .expect("non-empty grid");
        let parallel_best = Sweep::new(grid).best().expect("non-empty grid");
        assert_eq!(serial_best.label, parallel_best.label, "{sys}");
        assert_eq!(serial_best.report, parallel_best.report, "{sys}");
    }
}

/// The §6.3 Baseline grid is 9 mappings × {pf on, off}; XMem and Ideal
/// fix the mapping and only toggle the prefetcher.
#[test]
fn placement_grid_sizes() {
    let w = PlacementWorkload::by_name("mcf").expect("mcf exists");
    assert_eq!(placement_specs(&w, Uc2System::Baseline).len(), 18);
    assert_eq!(placement_specs(&w, Uc2System::Xmem).len(), 2);
    assert_eq!(placement_specs(&w, Uc2System::IdealRbl).len(), 2);
}

fn fault_spec(label: &str) -> RunSpec {
    RunSpec::new(
        label,
        SystemConfig::scaled_use_case1(8 << 10, SystemKind::Baseline),
        WorkloadSpec::fault("injected fault: simulated device error"),
    )
}

/// The tentpole guarantee of this engine's fault isolation: a sweep with
/// one panicking spec completes every other point and surfaces exactly
/// one failure outcome — identically for a serial and a parallel pool.
#[test]
fn panicking_spec_does_not_abort_the_sweep() {
    let mut surviving = Vec::new();
    for workers in [1usize, 8] {
        let mut specs = kernel_grid();
        specs.insert(5, fault_spec("boom"));
        let total = specs.len();
        let outcomes = Sweep::new(specs).workers(workers).run_outcomes();
        assert_eq!(outcomes.len(), total, "one outcome per spec");
        let failures: Vec<_> = outcomes.iter().filter_map(|o| o.failure()).collect();
        assert_eq!(failures.len(), 1, "exactly one failure");
        assert_eq!(failures[0].label, "boom");
        assert!(failures[0].message.contains("injected fault"));
        assert!(outcomes[5].record().is_none(), "failure holds no record");
        let records: Vec<RunRecord> = outcomes
            .into_iter()
            .filter_map(RunOutcome::into_record)
            .collect();
        assert_eq!(records.len(), total - 1, "every other point completed");
        surviving.push(records);
    }
    for (s, p) in surviving[0].iter().zip(&surviving[1]) {
        assert_eq!(s.label, p.label);
        assert_eq!(
            s.report, p.report,
            "{}: serial and parallel diverge",
            s.label
        );
    }
}

/// `Sweep::run` still unwinds on failure — but only after the whole grid
/// has executed, with every failure in the panic summary.
#[test]
fn sweep_run_reports_failures_after_completion() {
    let p = KernelParams {
        n: 16,
        tile_bytes: 1024,
        steps: 1,
        reuse: 200,
    };
    let specs = vec![
        KernelRun::new(PolybenchKernel::Mvt, p).spec(),
        fault_spec("bad-point"),
    ];
    let sweep = Sweep::new(specs).workers(2);
    let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sweep.run()))
        .expect_err("a failed point must fail run()");
    let msg = payload.downcast_ref::<String>().expect("string panic");
    assert!(msg.contains("1/2"), "{msg}");
    assert!(msg.contains("bad-point"), "{msg}");
    assert!(msg.contains("injected fault"), "{msg}");
}

/// The empty-sweep satellite: `best()` is `None` instead of a panic, both
/// for zero specs and for a grid whose only point failed.
#[test]
fn empty_sweep_best_is_none() {
    let empty = Sweep::new(Vec::new());
    assert!(empty.run().is_empty());
    assert!(empty.best().is_none());
    assert!(Sweep::new(vec![fault_spec("only")]).best().is_none());
}

/// Removes the nondeterministic `run` block (wall time, worker id) from a
/// serialized record tree, leaving only the simulation's pure output.
fn strip_run(doc: &JsonValue) -> JsonValue {
    match doc {
        JsonValue::Object(pairs) => JsonValue::Object(
            pairs
                .iter()
                .filter(|(k, _)| k != "run")
                .map(|(k, v)| (k.clone(), strip_run(v)))
                .collect(),
        ),
        JsonValue::Array(items) => JsonValue::Array(items.iter().map(strip_run).collect()),
        other => other.clone(),
    }
}

/// Streaming + resume: delete one point file from a streamed report
/// directory and re-run — only that label re-executes, everything else
/// resumes, and the records match a fresh serial run byte-for-byte
/// modulo the `run` block.
#[test]
fn resume_reruns_only_missing_points() {
    let dir = std::env::temp_dir().join(format!("xmem-resume-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut specs = kernel_grid();
    specs.truncate(4);

    // The fresh serial streamed run: the byte-identity reference.
    let fresh = Sweep::new(specs.clone()).workers(1).report_dir(&dir).run();
    assert_eq!(fresh.len(), 4);
    let victim_label = specs[2].label.clone();
    let victim_path = dir.join(point_file_name(&victim_label));
    let reference = std::fs::read_to_string(&victim_path).expect("victim was streamed");
    std::fs::remove_file(&victim_path).expect("delete victim point file");

    let outcomes = Sweep::new(specs.clone())
        .workers(4)
        .resume_from(&dir)
        .run_outcomes();
    for (i, outcome) in outcomes.iter().enumerate() {
        match outcome {
            RunOutcome::Completed(r) => {
                assert_eq!(i, 2, "only the deleted label re-executes");
                assert_eq!(r.label, victim_label);
            }
            RunOutcome::Resumed(r) => {
                assert_ne!(i, 2);
                assert_eq!(r.label, specs[i].label);
                assert!(r.run.expect("resumed records carry meta").resumed);
            }
            RunOutcome::Failed(f) => panic!("unexpected failure: {f:?}"),
        }
    }
    // All four records — three resumed, one re-run — equal the fresh
    // serial run's, modulo the run block.
    for (outcome, fresh_rec) in outcomes.iter().zip(&fresh) {
        let r = outcome.record().expect("no failures");
        assert_eq!(
            strip_run(&r.to_json()).render(),
            strip_run(&fresh_rec.to_json()).render(),
            "{}",
            fresh_rec.label
        );
    }
    // The victim's rewritten point file is byte-identical to the fresh
    // serial one, modulo the run block.
    let rerun = std::fs::read_to_string(&victim_path).expect("victim was re-streamed");
    assert_eq!(
        strip_run(&JsonValue::parse(&reference).unwrap()).render(),
        strip_run(&JsonValue::parse(&rerun).unwrap()).render()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A stored point from a differently-configured sweep must re-run, not
/// resume: resume matches on label + workload (name and parameters) +
/// config summary.
#[test]
fn resume_ignores_stale_configs() {
    let dir = std::env::temp_dir().join(format!("xmem-stale-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = KernelParams {
        n: 24,
        tile_bytes: 4 << 10,
        steps: 1,
        reuse: 200,
    };
    let spec = |l3: u64| {
        RunSpec::new(
            "pt",
            SystemConfig::scaled_use_case1(l3, SystemKind::Baseline),
            WorkloadSpec::kernel(PolybenchKernel::Mvt, p),
        )
    };
    Sweep::new(vec![spec(8 << 10)])
        .workers(1)
        .report_dir(&dir)
        .run();
    let outcomes = Sweep::new(vec![spec(16 << 10)])
        .resume_from(&dir)
        .run_outcomes();
    assert!(
        matches!(outcomes[0], RunOutcome::Completed(_)),
        "a stale point must re-execute, got {outcomes:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The quick-mode trap: labels and config summaries do not encode problem
/// sizes, so a point streamed by a `--quick`-sized run (smaller `n`) must
/// re-run — not silently resume — when the same label comes back at full
/// size. Identical parameters still resume.
#[test]
fn resume_ignores_stale_workload_params() {
    let dir = std::env::temp_dir().join(format!("xmem-stale-params-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = |n: usize| {
        RunSpec::new(
            "pt",
            SystemConfig::scaled_use_case1(8 << 10, SystemKind::Baseline),
            WorkloadSpec::kernel(
                PolybenchKernel::Mvt,
                KernelParams {
                    n,
                    tile_bytes: 4 << 10,
                    steps: 1,
                    reuse: 200,
                },
            ),
        )
    };
    Sweep::new(vec![spec(16)]).workers(1).report_dir(&dir).run();
    let outcomes = Sweep::new(vec![spec(24)]).resume_from(&dir).run_outcomes();
    assert!(
        matches!(outcomes[0], RunOutcome::Completed(_)),
        "a differently-parameterized point must re-execute, got {outcomes:?}"
    );
    // The re-run overwrote the point file; the same parameters now resume.
    let outcomes = Sweep::new(vec![spec(24)]).resume_from(&dir).run_outcomes();
    assert!(
        matches!(outcomes[0], RunOutcome::Resumed(_)),
        "an identically-parameterized point must resume, got {outcomes:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn sample_records() -> Vec<RunRecord> {
    let p = KernelParams {
        n: 24,
        tile_bytes: 4 << 10,
        steps: 2,
        reuse: 200,
    };
    Sweep::new(vec![
        KernelRun::new(PolybenchKernel::Gemm, p).spec(),
        KernelRun::new(PolybenchKernel::Gemm, p)
            .system(SystemKind::Xmem)
            .spec(),
    ])
    .run()
}

/// A rendered JSON report parses back to the identical value tree, and
/// the headline fields survive with full fidelity.
#[test]
fn json_report_round_trips() {
    let records = sample_records();
    let mut sink = JsonSink::new();
    for r in &records {
        sink.emit(r).unwrap();
    }
    let text = sink.render();
    let doc = xmem_sim::JsonValue::parse(&text).expect("sink output parses");
    // Round trip: render(parse(render(x))) == render(x).
    assert_eq!(doc.render(), text);

    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(JSON_SCHEMA)
    );
    let parsed = doc
        .get("records")
        .and_then(|v| v.as_array())
        .expect("records");
    assert_eq!(parsed.len(), records.len());
    for (json, rec) in parsed.iter().zip(&records) {
        assert_eq!(
            json.get("label").and_then(|v| v.as_str()),
            Some(rec.label.as_str())
        );
        assert_eq!(
            json.get("core")
                .and_then(|c| c.get("cycles"))
                .and_then(|v| v.as_u64()),
            Some(rec.report.cycles())
        );
        assert_eq!(
            json.get("derived")
                .and_then(|d| d.get("ipc"))
                .and_then(|v| v.as_f64()),
            Some(rec.report.core.ipc())
        );
        // The whole record tree is identical to a fresh serialization.
        assert_eq!(json, &rec.to_json());
    }
}

/// Telemetry determinism, half 1: a sampled parallel sweep serializes
/// byte-identically to a sampled serial sweep — the epoch series is part
/// of the record, so it inherits the pool's bit-reproducibility guarantee.
#[test]
fn sampled_parallel_sweep_is_byte_identical_to_serial() {
    let epoch = Some(2_000);
    let mut specs = kernel_grid();
    specs.truncate(6);
    let serial = Sweep::new(specs.clone()).workers(1).epoch(epoch).run();
    let parallel = Sweep::new(specs).workers(8).epoch(epoch).run();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        let series = s.telemetry.as_ref().expect("sampling was enabled");
        assert!(!series.samples.is_empty(), "{}: empty series", s.label);
        assert_eq!(s.telemetry, p.telemetry, "{}: series diverge", s.label);
        assert_eq!(
            strip_run(&s.to_json()).render(),
            strip_run(&p.to_json()).render(),
            "{}: serialized records diverge",
            s.label
        );
    }
}

/// Telemetry determinism, half 2: a resumed sweep re-emits the exact
/// series its cached points stored, and a point whose stored sampling
/// epoch does not match the sweep's re-runs instead of resuming.
#[test]
fn resume_re_emits_identical_telemetry_series() {
    let dir = std::env::temp_dir().join(format!("xmem-telemetry-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut specs = kernel_grid();
    specs.truncate(3);
    let fresh = Sweep::new(specs.clone())
        .workers(1)
        .epoch(Some(2_000))
        .report_dir(&dir)
        .run();

    // Same epoch: every point resumes, with the stored series intact.
    let outcomes = Sweep::new(specs.clone())
        .epoch(Some(2_000))
        .resume_from(&dir)
        .run_outcomes();
    for (outcome, fresh_rec) in outcomes.iter().zip(&fresh) {
        let r = match outcome {
            RunOutcome::Resumed(r) => r,
            other => panic!("expected a resume, got {other:?}"),
        };
        assert_eq!(
            r.telemetry, fresh_rec.telemetry,
            "{}: resumed series differs from the one executed",
            r.label
        );
        assert_eq!(
            strip_run(&r.to_json()).render(),
            strip_run(&fresh_rec.to_json()).render(),
            "{}: resumed record serializes differently",
            r.label
        );
    }

    // A different epoch — or no sampling at all — must re-run, never adopt
    // a series with the wrong resolution.
    for mismatched in [Some(4_000), None] {
        let outcomes = Sweep::new(specs.clone())
            .epoch(mismatched)
            .resume_from(&dir)
            .run_outcomes();
        assert!(
            outcomes
                .iter()
                .all(|o| matches!(o, RunOutcome::Completed(_))),
            "epoch {mismatched:?} must not resume points sampled at 2000"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CSV emitter's `parse` is an exact inverse of `render`: same rows,
/// same cells, including the header.
#[test]
fn csv_report_round_trips() {
    let records = sample_records();
    let mut sink = CsvSink::new();
    for r in &records {
        sink.emit(r).unwrap();
    }
    let text = sink.render();
    let rows = CsvSink::parse(&text);
    assert_eq!(rows.len(), 1 + records.len(), "header + one row per record");
    let header = &rows[0];
    assert!(header.iter().any(|c| c == "label"));
    assert!(header.iter().any(|c| c == "core.cycles"));
    assert!(header.iter().any(|c| c == "derived.ipc"));
    for (row, rec) in rows[1..].iter().zip(&records) {
        assert_eq!(row.len(), header.len());
        let col = |name: &str| {
            let i = header.iter().position(|c| c == name).expect("column");
            row[i].as_str()
        };
        assert_eq!(col("label"), rec.label);
        assert_eq!(col("core.cycles"), rec.report.cycles().to_string());
    }
}

/// Regression test for the R1 (`nondet-map`) migrations: the *rendered
/// report document* — not just the in-memory stats — must be
/// byte-identical between a serial run and an 8-worker run. This is the
/// property the BTreeMap/BTreeSet switches in `machine`, `multicore`,
/// `os-sim` and the harness protect; only the wall-clock `run` block may
/// differ between the two documents.
#[test]
fn rendered_reports_byte_identical_across_worker_counts() {
    let render = |workers: usize| {
        let mut sink = JsonSink::new();
        for r in Sweep::new(kernel_grid()).workers(workers).run() {
            sink.emit(&r).unwrap();
        }
        strip_run(&JsonValue::parse(&sink.render()).expect("valid JSON")).render()
    };
    let serial = render(1);
    let parallel = render(8);
    assert_eq!(
        serial.as_bytes(),
        parallel.as_bytes(),
        "XMEM_WORKERS=1 vs 8 reports diverge"
    );
}
