//! Integration tests for the experiment-sweep engine: the parallel pool
//! must be indistinguishable from a serial loop, and the structured
//! reports must survive a round trip through their serialized forms.

use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_sim::{
    placement_specs, CsvSink, JsonSink, KernelRun, ReportSink, RunRecord, RunSpec, Sweep,
    SystemKind, Uc2System, JSON_SCHEMA,
};

fn kernel_grid() -> Vec<RunSpec> {
    let p = KernelParams {
        n: 32,
        tile_bytes: 8 << 10,
        steps: 3,
        reuse: 200,
    };
    let mut specs = Vec::new();
    for kernel in [
        PolybenchKernel::Gemm,
        PolybenchKernel::Syrk,
        PolybenchKernel::Jacobi2d,
        PolybenchKernel::Mvt,
    ] {
        for kind in [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem] {
            specs.push(KernelRun::new(kernel, p).system(kind).spec());
        }
    }
    specs
}

/// The tentpole guarantee: running a sweep on the worker pool yields the
/// exact same `RunReport`s, in the exact same order, as running it one
/// spec at a time. Every stats struct is compared via `PartialEq`.
#[test]
fn parallel_sweep_equals_serial_sweep() {
    let serial = Sweep::new(kernel_grid()).workers(1).run();
    let parallel = Sweep::new(kernel_grid()).workers(8).run();
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.label, p.label);
        assert_eq!(s.workload, p.workload);
        assert_eq!(s.report, p.report, "{}: reports diverge", s.label);
    }
}

/// The parallel placement engine must pick the same §6.3 winner as the
/// old serial `best_of` loop: iterate the grid in order, keep the first
/// point with the minimum cycle count.
#[test]
fn placement_best_matches_serial_best_of() {
    let mut w = PlacementWorkload::by_name("milc").expect("milc exists");
    w.accesses = 25_000;
    for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
        let grid = placement_specs(&w, sys);
        // The old bespoke loop: serial execution, first-minimum wins.
        let serial: Vec<RunRecord> = Sweep::new(placement_specs(&w, sys)).workers(1).run();
        let serial_best = serial
            .iter()
            .min_by_key(|r| r.report.cycles())
            .expect("non-empty grid");
        let parallel_best = Sweep::new(grid).best();
        assert_eq!(serial_best.label, parallel_best.label, "{sys}");
        assert_eq!(serial_best.report, parallel_best.report, "{sys}");
    }
}

/// The §6.3 Baseline grid is 9 mappings × {pf on, off}; XMem and Ideal
/// fix the mapping and only toggle the prefetcher.
#[test]
fn placement_grid_sizes() {
    let w = PlacementWorkload::by_name("mcf").expect("mcf exists");
    assert_eq!(placement_specs(&w, Uc2System::Baseline).len(), 18);
    assert_eq!(placement_specs(&w, Uc2System::Xmem).len(), 2);
    assert_eq!(placement_specs(&w, Uc2System::IdealRbl).len(), 2);
}

fn sample_records() -> Vec<RunRecord> {
    let p = KernelParams {
        n: 24,
        tile_bytes: 4 << 10,
        steps: 2,
        reuse: 200,
    };
    Sweep::new(vec![
        KernelRun::new(PolybenchKernel::Gemm, p).spec(),
        KernelRun::new(PolybenchKernel::Gemm, p)
            .system(SystemKind::Xmem)
            .spec(),
    ])
    .run()
}

/// A rendered JSON report parses back to the identical value tree, and
/// the headline fields survive with full fidelity.
#[test]
fn json_report_round_trips() {
    let records = sample_records();
    let mut sink = JsonSink::new();
    for r in &records {
        sink.emit(r);
    }
    let text = sink.render();
    let doc = xmem_sim::JsonValue::parse(&text).expect("sink output parses");
    // Round trip: render(parse(render(x))) == render(x).
    assert_eq!(doc.render(), text);

    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some(JSON_SCHEMA)
    );
    let parsed = doc
        .get("records")
        .and_then(|v| v.as_array())
        .expect("records");
    assert_eq!(parsed.len(), records.len());
    for (json, rec) in parsed.iter().zip(&records) {
        assert_eq!(
            json.get("label").and_then(|v| v.as_str()),
            Some(rec.label.as_str())
        );
        assert_eq!(
            json.get("core")
                .and_then(|c| c.get("cycles"))
                .and_then(|v| v.as_u64()),
            Some(rec.report.cycles())
        );
        assert_eq!(
            json.get("derived")
                .and_then(|d| d.get("ipc"))
                .and_then(|v| v.as_f64()),
            Some(rec.report.core.ipc())
        );
        // The whole record tree is identical to a fresh serialization.
        assert_eq!(json, &rec.to_json());
    }
}

/// The CSV emitter's `parse` is an exact inverse of `render`: same rows,
/// same cells, including the header.
#[test]
fn csv_report_round_trips() {
    let records = sample_records();
    let mut sink = CsvSink::new();
    for r in &records {
        sink.emit(r);
    }
    let text = sink.render();
    let rows = CsvSink::parse(&text);
    assert_eq!(rows.len(), 1 + records.len(), "header + one row per record");
    let header = &rows[0];
    assert!(header.iter().any(|c| c == "label"));
    assert!(header.iter().any(|c| c == "core.cycles"));
    assert!(header.iter().any(|c| c == "derived.ipc"));
    for (row, rec) in rows[1..].iter().zip(&records) {
        assert_eq!(row.len(), header.len());
        let col = |name: &str| {
            let i = header.iter().position(|c| c == name).expect("column");
            row[i].as_str()
        };
        assert_eq!(col("label"), rec.label);
        assert_eq!(col("core.cycles"), rec.report.cycles().to_string());
    }
}
