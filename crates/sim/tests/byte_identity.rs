//! The byte-identity suite for the batched memory path (PR 6).
//!
//! The batched API's contract is that buffering ops into [`OpBatch`]es and
//! serving them through `MemoryPath::serve_batch` is *observably identical*
//! to the scalar one-op-at-a-time execution it replaced. These tests pin
//! that contract at every level:
//!
//! * quick-sized fig4–fig7 grid points, batched vs. the scalar reference
//!   arm (`run_workload_scalar`, which drives the machine without a
//!   `BatchEmitter`);
//! * sweep records under 1 worker vs. 8 workers;
//! * SplitMix64-fuzzed `OpBatch` lane round trips and `serve_batch` vs.
//!   per-op `serve` through the DRAM layer and the scalar adapter.
//!
//! PR 8 extends the contract to the interval-sampling engine: a
//! 100%-coverage [`SamplingSpec`] (every op detailed, nothing fast-forwarded)
//! must leave the report byte-identical to plain full execution on the same
//! fig4–fig7 grid points — the sampling machinery may observe, never perturb.

use cpu_sim::batch::{MemoryPath, OpAttrs, OpBatch, OpKind, BATCH_CAPACITY};
use cpu_sim::trace::{FixedLatency, Op};
use dram_sim::{AddressMapping, Dram, DramConfig};
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::TraceSink;
use xmem_core::rng::SplitMix64;
use xmem_sim::{
    placement_specs, run_workload_sampled_scalar, run_workload_scalar, KernelRun, RunSpec,
    SamplingSpec, Sweep, SystemKind, Uc2System,
};

/// Asserts one spec's batched report equals the scalar reference report,
/// field for field and byte for byte (the `Debug` rendering covers every
/// counter in the report, so string equality is a byte-level check).
fn assert_identical(spec: &RunSpec) {
    let batched = spec.execute();
    let scalar = run_workload_scalar(&spec.config, |s| spec.workload.generate(s));
    assert_eq!(batched, scalar, "{}: batched != scalar", spec.label);
    assert_eq!(
        format!("{batched:?}"),
        format!("{scalar:?}"),
        "{}: Debug renderings differ",
        spec.label
    );
}

fn uc1_params(n: usize, tile_bytes: u64) -> KernelParams {
    KernelParams {
        n,
        tile_bytes,
        steps: 4,
        reuse: 200,
    }
}

/// Figures 4–6 are (kernel, system, tile-size) grids over the polybench
/// kernels. A quick-sized sample of that grid — small/tuned/oversized
/// tiles, a spread of kernels, both systems — must be byte-identical
/// batched vs. scalar.
#[test]
fn fig4_to_fig6_quick_points_batched_equals_scalar() {
    let l3 = 32 << 10;
    let kernels = [
        PolybenchKernel::Gemm,
        PolybenchKernel::Syrk,
        PolybenchKernel::Trmm,
    ];
    for kernel in kernels {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            for tile in [2048, l3 / 2, 2 * l3] {
                let mut spec = KernelRun::new(kernel, uc1_params(32, tile))
                    .l3_bytes(l3)
                    .system(kind)
                    .spec();
                spec.label = format!("{}/{kind}/tile={tile}", kernel.name());
                assert_identical(&spec);
            }
        }
    }
}

/// Figure 7 sweeps the placement workloads over Baseline / XMem /
/// Ideal-RBL systems; each grid point must be byte-identical batched vs.
/// scalar. Two representative mixes at quick size keep the runtime sane.
#[test]
fn fig7_quick_points_batched_equals_scalar() {
    let mut workloads: Vec<PlacementWorkload> =
        PlacementWorkload::all().into_iter().take(2).collect();
    for w in &mut workloads {
        w.accesses = 20_000;
    }
    for w in &workloads {
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            for spec in placement_specs(w, sys) {
                assert_identical(&spec);
            }
        }
    }
}

/// Worker-count invariance: the records of a sweep are identical whether
/// the pool has 1 worker (serial reference) or 8, including the sampled
/// telemetry series. This is the `XMEM_WORKERS=1` vs `=8` CI check,
/// exercised through `Sweep::workers` (the same value the env var feeds)
/// so the test never touches the process environment.
#[test]
fn sweep_records_identical_under_1_and_8_workers() {
    let specs = || -> Vec<RunSpec> {
        [
            PolybenchKernel::Gemm,
            PolybenchKernel::Mvt,
            PolybenchKernel::Syr2k,
        ]
        .into_iter()
        .flat_map(|kernel| {
            [SystemKind::Baseline, SystemKind::Xmem].map(|kind| {
                let mut spec = KernelRun::new(kernel, uc1_params(32, 4096))
                    .l3_bytes(32 << 10)
                    .system(kind)
                    .spec();
                spec.label = format!("{}/{kind}", kernel.name());
                spec
            })
        })
        .collect()
    };
    let serial = Sweep::new(specs()).workers(1).epoch(Some(2_000)).run();
    let parallel = Sweep::new(specs()).workers(8).epoch(Some(2_000)).run();
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.report, b.report, "{}", a.label);
        assert_eq!(
            format!("{:?}", a.report),
            format!("{:?}", b.report),
            "{}",
            a.label
        );
        // Telemetry samples carry f64 rates; the Debug rendering compares
        // their exact bit patterns without needing PartialEq on the series.
        assert_eq!(
            format!("{:?}", a.telemetry),
            format!("{:?}", b.telemetry),
            "{}",
            a.label
        );
    }
}

/// Asserts one spec's report under a 100%-coverage sampling schedule equals
/// its plain full execution, byte for byte, and that the run's sampling
/// summary confirms every op went through the detailed path.
fn assert_full_coverage_identical(spec: &RunSpec) {
    let plain = spec.execute();
    let sampled = spec.execute_sampled(None, Some(SamplingSpec::full_coverage()));
    assert_eq!(
        plain, sampled.report,
        "{}: 100% coverage changed the report",
        spec.label
    );
    assert_eq!(
        format!("{plain:?}"),
        format!("{:?}", sampled.report),
        "{}: Debug renderings differ",
        spec.label
    );
    let summary = sampled.sampling.expect("sampled run carries a summary");
    assert_eq!(summary.detailed_ops, summary.total_ops, "{}", spec.label);
    assert_eq!(summary.warm_ops, 0, "{}", spec.label);
}

/// The sampling engine at 100% coverage is a no-op on the fig4–fig6 grid:
/// same kernels/systems/tiles as the batched-vs-scalar check above.
#[test]
fn fig4_to_fig6_quick_points_full_coverage_sampling_is_identity() {
    let l3 = 32 << 10;
    let kernels = [
        PolybenchKernel::Gemm,
        PolybenchKernel::Syrk,
        PolybenchKernel::Trmm,
    ];
    for kernel in kernels {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            for tile in [2048, l3 / 2, 2 * l3] {
                let mut spec = KernelRun::new(kernel, uc1_params(32, tile))
                    .l3_bytes(l3)
                    .system(kind)
                    .spec();
                spec.label = format!("{}/{kind}/tile={tile}", kernel.name());
                assert_full_coverage_identical(&spec);
            }
        }
    }
}

/// Asserts one spec, under a *partial*-coverage sampling schedule, is
/// identical through the batched sampled dispatch (phase-run tight loops,
/// bulk skip accounting, ramp-split snapshots) and the scalar per-op
/// dispatch — report and sampling summary both.
fn assert_sampled_batched_equals_scalar(spec: &RunSpec, sampling: SamplingSpec) {
    let batched = spec.execute_sampled(None, Some(sampling));
    let scalar = run_workload_sampled_scalar(&spec.config, sampling, |s| spec.workload.generate(s));
    assert_eq!(
        batched.report, scalar.report,
        "{}: sampled batched != sampled scalar",
        spec.label
    );
    assert_eq!(
        format!("{:?}", batched.sampling),
        format!("{:?}", scalar.sampling),
        "{}: sampling summaries differ",
        spec.label
    );
}

/// Partial-coverage sampled execution is batched/scalar-identical on a
/// spread of fig4–fig6 grid points. The schedule is sized so quick runs
/// cross several intervals and every phase boundary lands mid-batch
/// somewhere (interval and batch capacity are coprime).
#[test]
fn partial_coverage_sampling_batched_equals_scalar() {
    let sampling = SamplingSpec {
        warmup_ops: 500,
        window_ops: 1_500,
        interval: 6_007,
    };
    let l3 = 32 << 10;
    for kernel in [PolybenchKernel::Gemm, PolybenchKernel::Syrk] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            let mut spec = KernelRun::new(kernel, uc1_params(32, l3 / 2))
                .l3_bytes(l3)
                .system(kind)
                .spec();
            spec.label = format!("{}/{kind}/sampled", kernel.name());
            assert_sampled_batched_equals_scalar(&spec, sampling);
        }
    }
}

/// The sampling engine at 100% coverage is a no-op on the fig7 placement
/// grid as well (all three memory systems).
#[test]
fn fig7_quick_points_full_coverage_sampling_is_identity() {
    let mut workloads: Vec<PlacementWorkload> =
        PlacementWorkload::all().into_iter().take(2).collect();
    for w in &mut workloads {
        w.accesses = 20_000;
    }
    for w in &workloads {
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            for spec in placement_specs(w, sys) {
                assert_full_coverage_identical(&spec);
            }
        }
    }
}

/// A deterministic random op with random attributes.
fn random_push(rng: &mut SplitMix64, batch: &mut OpBatch, now: u64) -> (OpKind, u64, OpAttrs) {
    let kind = match rng.below(4) {
        0 => OpKind::Compute,
        1 | 2 => OpKind::Load,
        _ => OpKind::Store,
    };
    let addr = match kind {
        OpKind::Compute => rng.range(1, 400),
        _ => rng.below(1 << 26),
    };
    let attrs = match kind {
        OpKind::Compute => OpAttrs::default(),
        OpKind::Load => OpAttrs::read()
            .with_dep(rng.percent(30))
            .on_socket(rng.below(4) as u8)
            .with_salt(rng.next_u64()),
        OpKind::Store => OpAttrs::write()
            .on_socket(rng.below(4) as u8)
            .with_salt(rng.next_u64()),
    };
    batch.push(kind, addr, attrs, now);
    (kind, addr, attrs)
}

/// Fuzz: everything pushed into an `OpBatch` reads back exactly — kind,
/// address, attributes, start cycle, and the reconstructed trace `Op`.
#[test]
fn opbatch_lanes_round_trip_fuzzed() {
    let mut rng = SplitMix64::new(0x1DE57);
    for _ in 0..64 {
        let mut batch = OpBatch::new();
        let n = rng.range(1, BATCH_CAPACITY as u64 + 1) as usize;
        let mut pushed = Vec::with_capacity(n);
        for i in 0..n {
            let now = i as u64 * 3;
            pushed.push((random_push(&mut rng, &mut batch, now), now));
        }
        assert_eq!(batch.len(), n);
        for (i, &((kind, addr, attrs), now)) in pushed.iter().enumerate() {
            assert_eq!(batch.kind(i), kind);
            assert_eq!(batch.addr(i), addr);
            assert_eq!(batch.start(i), now);
            if kind != OpKind::Compute {
                assert_eq!(batch.attrs(i), attrs);
            }
            let expect_op = match kind {
                OpKind::Compute => Op::Compute(addr as u32),
                OpKind::Load => Op::Load {
                    addr,
                    dep: attrs.dep,
                },
                OpKind::Store => Op::Store { addr },
            };
            assert_eq!(batch.op(i), expect_op);
        }
    }
}

/// Fuzz: `serve_batch` against the DRAM layer leaves the model in exactly
/// the state per-op `serve` calls produce, and returns the same latencies.
#[test]
fn dram_serve_batch_matches_per_op_serve_fuzzed() {
    let mut rng = SplitMix64::new(0xD1A);
    let fresh = || {
        Dram::new(
            DramConfig::ddr3_1066(3.6).with_capacity(64 << 20),
            AddressMapping::scheme1(),
        )
    };
    let mut batched = fresh();
    let mut scalar = fresh();
    let mut now = 0u64;
    for _ in 0..32 {
        let mut batch = OpBatch::new();
        let mut mirror = Vec::new();
        for _ in 0..rng.range(1, 257) {
            now += rng.range(1, 32);
            random_push(&mut rng, &mut batch, now);
            mirror.push(now);
        }
        let reference: Vec<Option<u64>> = (0..batch.len())
            .map(|i| match batch.kind(i) {
                OpKind::Compute => None,
                _ => Some(scalar.serve(batch.addr(i), batch.attrs(i), batch.start(i))),
            })
            .collect();
        batched.serve_batch(&mut batch);
        for (i, expect) in reference.iter().enumerate() {
            match expect {
                Some(lat) => assert_eq!(batch.latency(i), *lat, "op {i}"),
                // Compute lanes keep their start cycle untouched.
                None => assert_eq!(batch.latency(i), mirror[i], "compute op {i}"),
            }
        }
        assert_eq!(
            format!("{batched:?}"),
            format!("{scalar:?}"),
            "DRAM state diverged"
        );
    }
}

/// Fuzz: the blanket scalar adapter serves batches exactly as the scalar
/// `MemoryModel::access` would, op for op.
#[test]
fn scalar_adapter_serve_batch_matches_access_fuzzed() {
    use cpu_sim::trace::MemoryModel;
    let mut rng = SplitMix64::new(0xF1);
    let mut model = FixedLatency { latency: 13 };
    for _ in 0..16 {
        let mut batch = OpBatch::new();
        for i in 0..rng.range(1, 257) {
            random_push(&mut rng, &mut batch, i * 2);
        }
        let reference: Vec<Option<u64>> = (0..batch.len())
            .map(|i| match batch.kind(i) {
                OpKind::Compute => None,
                _ => Some(model.access(batch.addr(i), batch.attrs(i).write, batch.start(i))),
            })
            .collect();
        model.serve_batch(&mut batch);
        for (i, expect) in reference.iter().enumerate() {
            if let Some(lat) = expect {
                assert_eq!(batch.latency(i), *lat);
            }
        }
    }
}

/// Fuzz the whole machine: a seeded synthetic workload (random allocs,
/// loads, stores, compute bursts, atom hints) runs byte-identical through
/// the batched and scalar paths.
#[test]
fn random_workloads_batched_equals_scalar() {
    use xmem_core::attrs::{AccessPattern, AtomAttributes, Reuse};
    use xmem_sim::{run_workload, SystemConfig};

    let generate = |seed: u64, sink: &mut dyn TraceSink| {
        let mut rng = SplitMix64::new(seed);
        let atom = sink.create_atom(
            "fuzz",
            AtomAttributes::builder()
                .access_pattern(AccessPattern::sequential(8))
                .reuse(Reuse(100))
                .build(),
        );
        let bytes = 1 << rng.range(14, 17);
        let base = sink.alloc(bytes, Some(atom));
        sink.map(atom, base, bytes);
        sink.activate(atom);
        for _ in 0..6_000 {
            let addr = base + rng.below(bytes / 8) * 8;
            match rng.below(10) {
                0..=5 => sink.op(Op::load(addr)),
                6 => sink.op(Op::load_dep(addr)),
                7 | 8 => sink.op(Op::store(addr)),
                _ => sink.op(Op::Compute(rng.range(1, 64) as u32)),
            }
        }
        sink.deactivate(atom);
    };
    for seed in [1u64, 7, 42] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            let cfg = SystemConfig::scaled_use_case1(32 << 10, kind);
            let batched = run_workload(&cfg, |s| generate(seed, s));
            let scalar = run_workload_scalar(&cfg, |s| generate(seed, s));
            assert_eq!(batched, scalar, "seed {seed}, {kind}");
            assert_eq!(format!("{batched:?}"), format!("{scalar:?}"));
        }
    }
}
