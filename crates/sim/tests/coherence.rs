//! Protocol gate for the MESI snooping bus: litmus scenarios with exact
//! final states and bus-transaction counts, exhaustive enumeration of both
//! transition tables, invariant-checked randomized fuzzing against a
//! golden-memory oracle, determinism across worker counts, and a golden
//! regression pinning `CoherenceMode::None` to the pre-MESI numbers.

use cache_sim::{local_next, snoop_transition, BusOp, MesiState, SnoopAction};
use std::collections::BTreeMap;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::shared::{lock_counter, producer_consumer, read_mostly_reader, PcRole};
use workloads::sink::{LogSink, TraceEvent, TraceSink};
use xmem_core::attrs::Reuse;
use xmem_core::rng::SplitMix64;
use xmem_sim::harness::run_jobs;
use xmem_sim::{run_corun, CoherenceMode, CoherentCluster, MultiCoreConfig, SystemKind};

// ───────────────────────────── litmus ─────────────────────────────

#[test]
fn store_then_load_is_visible_across_cores() {
    let mut c = CoherentCluster::small(2);
    c.write(0, 0x1000, 7, 0);
    let (v, _) = c.read(1, 0x1000, 100);
    assert_eq!(v, 7, "core 1 must observe core 0's store");
    // Exactly one BusRdX (the store's I→M) and one BusRd (the load),
    // served cache-to-cache with the M line flushed to memory.
    let b = c.bus_stats();
    assert_eq!(b.bus_rdx, 1);
    assert_eq!(b.bus_rd, 1);
    assert_eq!(b.bus_upgr, 0);
    assert_eq!(b.c2c_transfers, 1);
    assert_eq!(b.writebacks, 1);
    assert_eq!(c.state(0, 0x1000), MesiState::Shared);
    assert_eq!(c.state(1, 0x1000), MesiState::Shared);
    c.check().expect("invariants hold");
}

#[test]
fn exclusive_line_upgrades_silently() {
    let mut c = CoherentCluster::small(2);
    let (_, _) = c.read(0, 0x2000, 0);
    assert_eq!(c.state(0, 0x2000), MesiState::Exclusive, "sole reader is E");
    let before = c.bus_stats().transactions();
    assert_eq!(before, 1, "the fill was the only transaction");
    c.write(0, 0x2000, 5, 50);
    assert_eq!(c.state(0, 0x2000), MesiState::Modified);
    assert_eq!(
        c.bus_stats().transactions(),
        before,
        "E→M must not touch the bus"
    );
    c.check().expect("invariants hold");
}

#[test]
fn modified_line_downgrades_to_shared_and_updates_memory() {
    let mut c = CoherentCluster::small(2);
    c.write(0, 0x3000, 9, 0);
    assert_eq!(c.memory_value(0x3000), 0, "store not yet written back");
    let (v, _) = c.read(1, 0x3000, 80);
    assert_eq!(v, 9);
    assert_eq!(c.state(0, 0x3000), MesiState::Shared, "M→S on snooped read");
    assert_eq!(c.state(1, 0x3000), MesiState::Shared);
    assert_eq!(
        c.memory_value(0x3000),
        9,
        "the snoop flush must reach memory"
    );
    c.check().expect("invariants hold");
}

#[test]
fn evicting_a_modified_line_writes_it_back() {
    // small() geometry: L1 1KB/2-way and L2 2KB/4-way, both 8 sets of
    // 64-byte lines, so stride 512 keeps hitting one set. Five writes
    // overflow the set in both levels: the LRU line leaves the whole
    // private domain while still Modified.
    let mut c = CoherentCluster::small(2);
    for k in 0..5u64 {
        c.write(0, k * 512, 100 + k, k * 10);
    }
    assert_eq!(
        c.state(0, 0),
        MesiState::Invalid,
        "line 0 must have left the domain"
    );
    assert_eq!(c.memory_value(0), 100, "eviction of M must write back");
    assert_eq!(c.state(0, 4 * 512), MesiState::Modified, "newest line is M");
    c.check().expect("invariants hold");
}

#[test]
fn write_race_to_one_line_leaves_last_writer_modified() {
    let mut c = CoherentCluster::small(2);
    c.write(0, 0x4000, 1, 0);
    c.write(1, 0x4000, 2, 60);
    assert_eq!(c.state(1, 0x4000), MesiState::Modified, "last writer owns");
    assert_eq!(c.state(0, 0x4000), MesiState::Invalid, "loser invalidated");
    let b = c.bus_stats();
    assert_eq!(b.bus_rdx, 2);
    assert_eq!(b.invalidations, 1);
    assert_eq!(b.writebacks, 1, "core 0's M copy flushed on the snoop");
    assert_eq!(c.l1_snoop_invalidations(0), 1);
    let (v, _) = c.read(0, 0x4000, 200);
    assert_eq!(v, 2, "the race winner's value is the one that sticks");
    c.check().expect("invariants hold");
}

#[test]
fn shared_write_goes_over_the_bus_as_upgrade() {
    let mut c = CoherentCluster::small(3);
    c.write(0, 0x5000, 3, 0);
    let _ = c.read(1, 0x5000, 50);
    let _ = c.read(2, 0x5000, 100);
    assert_eq!(c.state(2, 0x5000), MesiState::Shared);
    let before = c.bus_stats().bus_upgr;
    c.write(1, 0x5000, 4, 150);
    let b = c.bus_stats();
    assert_eq!(b.bus_upgr, before + 1, "S→M is a BusUpgr");
    assert_eq!(c.state(1, 0x5000), MesiState::Modified);
    assert_eq!(c.state(0, 0x5000), MesiState::Invalid);
    assert_eq!(c.state(2, 0x5000), MesiState::Invalid);
    let (v, _) = c.read(2, 0x5000, 220);
    assert_eq!(v, 4);
    c.check().expect("invariants hold");
}

// ──────────────────── exhaustive enumeration ─────────────────────

#[test]
fn local_transitions_match_the_documented_state_machine() {
    use BusOp::*;
    use MesiState::*;
    // Every (state, is_write, other_sharers) triple — 16 cases, no gaps.
    let table = [
        ((Invalid, false, false), (Exclusive, Some(Rd))),
        ((Invalid, false, true), (Shared, Some(Rd))),
        ((Invalid, true, false), (Modified, Some(RdX))),
        ((Invalid, true, true), (Modified, Some(RdX))),
        ((Shared, false, false), (Shared, None)),
        ((Shared, false, true), (Shared, None)),
        ((Shared, true, false), (Modified, Some(Upgr))),
        ((Shared, true, true), (Modified, Some(Upgr))),
        ((Exclusive, false, false), (Exclusive, None)),
        ((Exclusive, false, true), (Exclusive, None)),
        ((Exclusive, true, false), (Modified, None)),
        ((Exclusive, true, true), (Modified, None)),
        ((Modified, false, false), (Modified, None)),
        ((Modified, false, true), (Modified, None)),
        ((Modified, true, false), (Modified, None)),
        ((Modified, true, true), (Modified, None)),
    ];
    assert_eq!(table.len(), 4 * 2 * 2, "every pair enumerated");
    for ((state, w, others), expected) in table {
        assert_eq!(
            local_next(state, w, others),
            expected,
            "local_next({state}, write={w}, others={others})"
        );
    }
}

#[test]
fn snoop_transitions_match_the_documented_state_machine() {
    use BusOp::*;
    use MesiState::*;
    use SnoopAction::{FlushSupply, Supply};
    // Every (state, observed op) pair — 12 cases. The two `None`s are the
    // protocol's unreachable pairs: an Upgr is only issued for a line in
    // S, which SWMR forbids coexisting with a remote M or E copy.
    let table = [
        ((Modified, Rd), Some((Shared, FlushSupply))),
        ((Modified, RdX), Some((Invalid, FlushSupply))),
        ((Modified, Upgr), None),
        ((Exclusive, Rd), Some((Shared, Supply))),
        ((Exclusive, RdX), Some((Invalid, Supply))),
        ((Exclusive, Upgr), None),
        ((Shared, Rd), Some((Shared, SnoopAction::None))),
        ((Shared, RdX), Some((Invalid, SnoopAction::None))),
        ((Shared, Upgr), Some((Invalid, SnoopAction::None))),
        ((Invalid, Rd), Some((Invalid, SnoopAction::None))),
        ((Invalid, RdX), Some((Invalid, SnoopAction::None))),
        ((Invalid, Upgr), Some((Invalid, SnoopAction::None))),
    ];
    assert_eq!(table.len(), 4 * 3, "every pair enumerated");
    for ((state, op), expected) in table {
        assert_eq!(
            snoop_transition(state, op),
            expected,
            "snoop_transition({state}, {op:?})"
        );
    }
}

// ───────────────── invariant-checked randomized fuzz ─────────────────

/// SplitMix64-driven multi-core address streams against a shadow "golden
/// memory": after every access the cluster must agree with the oracle on
/// data values, and `check()` re-verifies SWMR plus the data-value
/// invariant over every cached copy.
#[test]
fn randomized_streams_preserve_swmr_and_data_value_invariants() {
    const SEEDS: u64 = 6; // fixed seed count, run in CI
    const STEPS: u64 = 1_500;
    for seed in 0..SEEDS {
        let mut rng = SplitMix64::new(0xC0DE_C0DE ^ seed);
        let mut cluster = CoherentCluster::small(4);
        let mut golden: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..STEPS {
            let core = (rng.next_u64() % 4) as usize;
            let addr = (rng.next_u64() % 48) * 64;
            let now = step * 7;
            if rng.next_u64() % 3 == 0 {
                let value = rng.next_u64();
                cluster.write(core, addr, value, now);
                golden.insert(addr, value);
            } else {
                let (v, _) = cluster.read(core, addr, now);
                let want = golden.get(&addr).copied().unwrap_or(0);
                assert_eq!(
                    v, want,
                    "seed {seed} step {step}: core {core} read stale data at {addr:#x}"
                );
            }
            if let Err(e) = cluster.check() {
                panic!("seed {seed} step {step}: invariant violated: {e}");
            }
        }
        assert!(
            cluster.bus_stats().transactions() > 0,
            "fuzz must exercise the bus"
        );
    }
}

// ───────────────────── determinism / byte-identity ─────────────────────

fn record(f: impl FnOnce(&mut dyn TraceSink)) -> Vec<TraceEvent> {
    let mut log = LogSink::new();
    f(&mut log);
    log.into_events()
}

fn shared_logs() -> Vec<Vec<TraceEvent>> {
    vec![
        record(|s| producer_consumer(s, PcRole::Producer, 8 << 10, 6, 2, Reuse(230))),
        record(|s| producer_consumer(s, PcRole::Consumer, 8 << 10, 6, 2, Reuse(230))),
        record(|s| read_mostly_reader(s, 2, 8 << 10, 1_200, 2, Reuse(200))),
        record(|s| lock_counter(s, 400, 4)),
    ]
}

fn mesi_config(aware: bool) -> MultiCoreConfig {
    let mut cfg = MultiCoreConfig::scaled_corun(4, 32 << 10, SystemKind::Xmem)
        .with_coherence(CoherenceMode::Mesi);
    cfg.coherence_aware_pinning = aware;
    cfg
}

#[test]
fn mesi_coruns_are_identical_across_worker_counts() {
    // The `XMEM_WORKERS=1` vs `=8` property for the coherent path: the
    // pool only distributes independent jobs, so worker count must never
    // leak into any report field.
    let logs = shared_logs();
    let jobs: Vec<MultiCoreConfig> = vec![mesi_config(true), mesi_config(false)];
    let render = |workers: usize| -> Vec<String> {
        run_jobs(jobs.len(), workers, |i| {
            format!("{:?}", run_corun(&jobs[i], &logs))
        })
    };
    assert_eq!(
        render(1),
        render(8),
        "worker count leaked into a MESI co-run report"
    );
}

#[test]
fn mesi_corun_is_reproducible_run_to_run() {
    let logs = shared_logs();
    let cfg = mesi_config(true);
    let a = format!("{:?}", run_corun(&cfg, &logs));
    let b = format!("{:?}", run_corun(&cfg, &logs));
    assert_eq!(a, b, "same config + logs must replay byte-identically");
}

#[test]
fn mesi_corun_exercises_the_bus_and_counts_traffic() {
    let logs = shared_logs();
    let r = run_corun(&mesi_config(true), &logs);
    assert!(r.bus.transactions() > 0, "shared logs must use the bus");
    assert!(r.bus.c2c_transfers > 0, "producer/consumer must c2c");
    assert!(r.bus.invalidations > 0, "lock contention must invalidate");
    let snoop_inval: u64 = r.l1s.iter().map(|c| c.snoop_invalidations).sum();
    assert!(snoop_inval > 0, "L1 snoop counters must see the traffic");
}

// ───────────────── golden regression: CoherenceMode::None ─────────────────

fn kernel_log(n: usize, tile: u64) -> Vec<TraceEvent> {
    record(|s| {
        PolybenchKernel::Gemm.generate(
            &KernelParams {
                n,
                tile_bytes: tile,
                steps: 1,
                reuse: 200,
            },
            s,
        )
    })
}

fn hog_log(lines: u64) -> Vec<TraceEvent> {
    record(|s| {
        let base = s.alloc(lines * 64, None);
        for i in 0..lines * 4 {
            s.load(base + (i % lines) * 64);
            s.compute(2);
        }
    })
}

struct CacheGold {
    acc: u64,
    hits: u64,
    fills: u64,
    ev: u64,
    wb: u64,
}

fn assert_cache(stats: &cache_sim::CacheStats, g: &CacheGold, what: &str) {
    assert_eq!(stats.accesses, g.acc, "{what} accesses");
    assert_eq!(stats.hits, g.hits, "{what} hits");
    assert_eq!(stats.fills, g.fills, "{what} fills");
    assert_eq!(stats.evictions, g.ev, "{what} evictions");
    assert_eq!(stats.writebacks, g.wb, "{what} writebacks");
    assert_eq!(stats.snoop_invalidations, 0, "{what} snooped without MESI");
    assert_eq!(
        stats.snoop_writebacks, 0,
        "{what} snoop-flushed without MESI"
    );
}

/// `CoherenceMode::None` (the default) must reproduce the pre-MESI
/// simulator exactly — these numbers were captured from the seed revision
/// before the coherence layer existed. Any drift here means the refactor
/// changed the incoherent memory path.
#[test]
fn coherence_none_matches_pre_mesi_golden_numbers() {
    // solo-baseline
    let r = run_corun(
        &MultiCoreConfig::scaled_corun(1, 32 << 10, SystemKind::Baseline),
        &[kernel_log(24, 2 << 10)],
    );
    assert_eq!(r.cores[0].cycles, 24165);
    assert_eq!(r.cores[0].instructions, 70272);
    assert_cache(
        &r.l2s[0],
        &CacheGold {
            acc: 304,
            hits: 87,
            fills: 217,
            ev: 9,
            wb: 1,
        },
        "solo l2[0]",
    );
    assert_cache(
        &r.l3,
        &CacheGold {
            acc: 217,
            hits: 61,
            fills: 222,
            ev: 0,
            wb: 0,
        },
        "solo l3",
    );
    assert_eq!(r.dram.accesses(), 222);
    assert_eq!((r.alb.hits, r.alb.misses), (0, 0));
    assert_eq!(r.bus.transactions(), 0, "no bus without MESI");

    // pair-xmem
    let r = run_corun(
        &MultiCoreConfig::scaled_corun(2, 32 << 10, SystemKind::Xmem),
        &[kernel_log(24, 2 << 10), hog_log(512)],
    );
    assert_eq!((r.cores[0].cycles, r.cores[0].instructions), (55707, 70272));
    assert_eq!((r.cores[1].cycles, r.cores[1].instructions), (42105, 6144));
    assert_cache(
        &r.l2s[0],
        &CacheGold {
            acc: 304,
            hits: 87,
            fills: 217,
            ev: 9,
            wb: 1,
        },
        "pair l2[0]",
    );
    assert_cache(
        &r.l2s[1],
        &CacheGold {
            acc: 2048,
            hits: 650,
            fills: 1398,
            ev: 1142,
            wb: 0,
        },
        "pair l2[1]",
    );
    assert_cache(
        &r.l3,
        &CacheGold {
            acc: 1615,
            hits: 1440,
            fills: 821,
            ev: 309,
            wb: 0,
        },
        "pair l3",
    );
    assert_eq!(r.dram.accesses(), 822);
    assert_eq!((r.alb.hits, r.alb.misses), (1597, 18));
    assert_eq!(r.bus.transactions(), 0);

    // trio-baseline
    let r = run_corun(
        &MultiCoreConfig::scaled_corun(3, 32 << 10, SystemKind::Baseline),
        &[kernel_log(32, 8 << 10), hog_log(2048), hog_log(2048)],
    );
    assert_eq!(
        (r.cores[0].cycles, r.cores[0].instructions),
        (177806, 164864)
    );
    assert_eq!(
        (r.cores[1].cycles, r.cores[1].instructions),
        (885735, 24576)
    );
    assert_eq!(
        (r.cores[2].cycles, r.cores[2].instructions),
        (887495, 24576)
    );
    assert_cache(
        &r.l2s[0],
        &CacheGold {
            acc: 1367,
            hits: 983,
            fills: 384,
            ev: 128,
            wb: 35,
        },
        "trio l2[0]",
    );
    for core in [1, 2] {
        assert_cache(
            &r.l2s[core],
            &CacheGold {
                acc: 8192,
                hits: 649,
                fills: 7543,
                ev: 7287,
                wb: 0,
            },
            "trio hog l2",
        );
    }
    assert_cache(
        &r.l3,
        &CacheGold {
            acc: 15470,
            hits: 14742,
            fills: 16006,
            ev: 15494,
            wb: 50,
        },
        "trio l3",
    );
    assert_eq!(r.dram.accesses(), 16086);
    assert_eq!((r.alb.hits, r.alb.misses), (0, 0));
    assert_eq!(r.bus.transactions(), 0);
}
