//! Table 1 demonstrator: data placement in hybrid (DRAM+NVM) memories.
//!
//! Several application mixes allocate their data structures into a small
//! DRAM + large NVM system under (i) first-touch allocation order and (ii)
//! XMem-guided placement using the structures' read-write and intensity
//! attributes. Reported: average access latency and writes absorbed by the
//! endurance-limited NVM.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin hybrid
//! ```

use cpu_sim::batch::OpAttrs;
use os_sim::hybrid::{HybridConfig, HybridMemory, HybridPolicy};
use xmem_bench::print_table;
use xmem_core::atom::AtomId;
use xmem_core::attrs::{AccessIntensity, AccessPattern, AtomAttributes, RwChar};
use xmem_core::translate::AttributeTranslator;

/// One structure: name (diagnostic), megabytes, write fraction (%), weight.
struct Spec(#[allow(dead_code)] &'static str, u64, u32, u32);

fn mixes() -> Vec<(&'static str, Vec<Spec>)> {
    vec![
        // Structures are listed in *allocation order*: programs typically
        // allocate their large read-mostly data (snapshots, dictionaries,
        // model inputs) before the write-hot state, which is exactly when
        // first-touch placement squanders the DRAM tier.
        (
            "kv-store",
            vec![
                Spec("snapshot", 6, 0, 2),
                Spec("log", 4, 90, 8),
                Spec("index", 3, 30, 6),
            ],
        ),
        (
            "analytics",
            vec![
                Spec("dictionary", 7, 0, 4),
                Spec("columns", 40, 0, 8),
                Spec("aggregates", 2, 70, 6),
            ],
        ),
        (
            "graph",
            vec![
                Spec("coords", 7, 0, 4),
                Spec("edges", 30, 0, 7),
                Spec("frontier", 3, 60, 7),
            ],
        ),
        (
            "ml-infer",
            vec![
                Spec("inputs", 8, 0, 3),
                Spec("weights", 36, 0, 9),
                Spec("activations", 5, 80, 6),
            ],
        ),
    ]
}

fn main() {
    println!("# Hybrid DRAM+NVM placement: 8 MB DRAM + 64 MB NVM");
    println!("# avg latency in cycles; NVM writes are the endurance-critical count\n");
    let headers: Vec<String> = [
        "mix",
        "naive lat",
        "xmem lat",
        "speedup",
        "naive NVM wr",
        "xmem NVM wr",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let translator = AttributeTranslator::new();

    for (name, specs) in mixes() {
        let atoms: Vec<_> = specs
            .iter()
            .enumerate()
            .map(|(i, Spec(_, mb, wr, weight))| {
                let attrs = AtomAttributes::builder()
                    .access_pattern(AccessPattern::sequential(8))
                    .rw(if *wr == 0 {
                        RwChar::ReadOnly
                    } else {
                        RwChar::ReadWrite
                    })
                    .intensity(AccessIntensity((weight * 25).min(255) as u8))
                    .build();
                (
                    AtomId::new(i as u8),
                    translator.for_placement(&attrs),
                    mb << 20,
                )
            })
            .collect();

        let mut naive = HybridMemory::new(HybridConfig::default(), &HybridPolicy::FirstFit);
        for (i, Spec(_, mb, _, _)) in specs.iter().enumerate() {
            naive.alloc_first_fit(AtomId::new(i as u8), mb << 20);
        }
        let mut xmem = HybridMemory::new(
            HybridConfig::default(),
            &HybridPolicy::Xmem {
                atoms: atoms.clone(),
            },
        );

        // Weighted deterministic access stream.
        let total_weight: u32 = specs.iter().map(|s| s.3).sum();
        let mut state = 0xABCDu64;
        for n in 0..200_000u64 {
            let pick = (n % total_weight as u64) as u32;
            let mut cum = 0;
            let mut idx = 0;
            for (i, s) in specs.iter().enumerate() {
                cum += s.3;
                if pick < cum {
                    idx = i;
                    break;
                }
            }
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let is_write = (state >> 33) % 100 < specs[idx].2 as u64;
            let atom = AtomId::new(idx as u8);
            let at = if is_write {
                OpAttrs::write()
            } else {
                OpAttrs::read()
            };
            naive.serve(atom, at);
            xmem.serve(atom, at);
        }

        rows.push(vec![
            name.to_string(),
            format!("{:.0}", naive.stats().avg_latency()),
            format!("{:.0}", xmem.stats().avg_latency()),
            format!(
                "{:.2}x",
                naive.stats().avg_latency() / xmem.stats().avg_latency()
            ),
            format!("{}", naive.stats().nvm_writes),
            format!("{}", xmem.stats().nvm_writes),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\nXMem's RWChar + AccessIntensity attributes let the OS place write-hot\n\
         structures in DRAM without profiling or migration (Table 1, hybrid row)."
    );
}
