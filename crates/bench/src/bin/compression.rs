//! Table 1 demonstrator: per-atom compression-algorithm selection.
//!
//! "Enables using a different compression algorithm for each data structure
//! based on data type and data properties, e.g., sparse data encodings,
//! FP-specific compression, delta-based compression for pointers."
//!
//! Four synthetic data structures (sparse matrix, pointer graph, narrow
//! counters, incompressible blobs) are compressed under each single
//! algorithm and under XMem's per-atom selection (driven by the attribute
//! translator's `CompressionPrimitive`).
//!
//! ```text
//! cargo run --release -p xmem-bench --bin compression
//! ```

use compress_sim::{datagen, mean_ratio};
use xmem_bench::print_table;
use xmem_core::attrs::{AtomAttributes, DataProps, DataType};
use xmem_core::translate::{AttributeTranslator, CompressionAlgo};

fn main() {
    const N: usize = 512;
    let structures: Vec<(&str, AtomAttributes, Vec<compress_sim::Line>)> = vec![
        (
            "sparse_matrix",
            AtomAttributes::builder().props(DataProps::SPARSE).build(),
            datagen::sparse(N, 11),
        ),
        (
            "pointer_graph",
            AtomAttributes::builder().props(DataProps::POINTER).build(),
            datagen::pointers(N, 22),
        ),
        (
            "counters",
            AtomAttributes::builder().data_type(DataType::Int32).build(),
            datagen::narrow_ints(N, 33),
        ),
        (
            "blobs",
            AtomAttributes::builder().data_type(DataType::Other).build(),
            datagen::random(N, 44),
        ),
    ];
    let algos = [
        CompressionAlgo::SparseEncoding,
        CompressionAlgo::DeltaPointer,
        CompressionAlgo::FpSpecific,
        CompressionAlgo::Generic,
    ];

    println!("# Compression ratio per data structure (64 B lines, {N} lines each)");
    println!("# XMem column: the algorithm chosen by the attribute translator.\n");

    let translator = AttributeTranslator::new();
    let mut headers = vec!["structure".to_string()];
    headers.extend(algos.iter().map(|a| format!("{a:?}")));
    headers.push("XMem-selected".into());

    let mut rows = Vec::new();
    let mut uniform_totals = vec![0.0f64; algos.len()];
    let mut selected_total = 0.0f64;
    for (name, attrs, lines) in &structures {
        let mut row = vec![name.to_string()];
        for (i, algo) in algos.iter().enumerate() {
            let r = mean_ratio(*algo, lines);
            uniform_totals[i] += r;
            row.push(format!("{r:.2}x"));
        }
        let chosen = translator.for_compression(attrs).algo;
        let r = mean_ratio(chosen, lines);
        selected_total += r;
        row.push(format!("{r:.2}x ({chosen:?})"));
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!();
    let n = structures.len() as f64;
    for (algo, total) in algos.iter().zip(&uniform_totals) {
        println!("uniform {algo:?}: avg {:.2}x", total / n);
    }
    println!("XMem per-atom selection: avg {:.2}x", selected_total / n);
}
