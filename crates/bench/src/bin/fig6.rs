//! Figure 6: effect of prefetching vs. full coordination across memory
//! bandwidths (§5.4).
//!
//! At the largest tile size, two XMem design points run against the
//! Baseline under 2 / 1 / 0.5 GB/s of per-core memory bandwidth:
//! *XMem-Pref* (guided prefetching only, DRRIP cache management) and *XMem*
//! (pinning + prefetching). The paper finds both help, with XMem ahead of
//! XMem-Pref by 13% / 19.5% / 31% as bandwidth shrinks — pinning saves
//! memory traffic, which matters more when bandwidth is scarce.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin fig6 [--quick] [--csv]
//! ```

use workloads::polybench::PolybenchKernel;
use xmem_bench::reports::{require_complete, ReportWriter};
use xmem_bench::{fig4_tiles, geomean, print_table, quick_mode, uc1_params, UC1_L3, UC1_N};
use xmem_sim::{KernelRun, RunSpec, Sweep, SystemKind};

fn main() {
    let n = if quick_mode() { 48 } else { UC1_N };
    let tile = *fig4_tiles().last().expect("non-empty sweep");
    let bandwidths = [4.0, 2.0, 1.0, 0.5];
    let systems = [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem];
    println!("# Figure 6: speedup over Baseline at the largest tile size");
    println!("# (per-core bandwidth sweep: 4 / 2 / 1 / 0.5 GB/s; the paper reports 2/1/0.5)\n");

    // One spec per (kernel, bandwidth, system): kernel-major, bandwidth
    // next, so each (kernel, bandwidth) group of three is contiguous.
    let kernels = PolybenchKernel::all();
    let specs: Vec<RunSpec> = kernels
        .iter()
        .flat_map(|&kernel| {
            bandwidths.into_iter().flat_map(move |bw| {
                systems.into_iter().map(move |kind| {
                    let mut spec = KernelRun::new(kernel, uc1_params(n, tile))
                        .l3_bytes(UC1_L3)
                        .system(kind)
                        .per_core_gbps(bw)
                        .spec();
                    spec.label = format!("{}/{kind}/{bw}GBps", kernel.name());
                    spec
                })
            })
        })
        .collect();
    let mut writer = ReportWriter::new("fig6");
    let outcomes = writer.sweep(Sweep::new(specs)).run_outcomes();
    let records = require_complete(&mut writer, outcomes);

    let headers: Vec<String> = [
        "kernel", "Pref@4", "XMem@4", "Pref@2", "XMem@2", "Pref@1", "XMem@1", "Pref@0.5",
        "XMem@0.5",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];
    let mut pref_speedups: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];
    let mut xmem_speedups: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];

    let per_kernel = bandwidths.len() * systems.len();
    for (ki, kernel) in kernels.iter().enumerate() {
        let chunk = &records[ki * per_kernel..(ki + 1) * per_kernel];
        let mut row = vec![kernel.name().to_string()];
        for (bi, group) in chunk.chunks(systems.len()).enumerate() {
            let (base, pref, xmem) = (&group[0], &group[1], &group[2]);
            let s_pref = pref.report.speedup_over(&base.report);
            let s_xmem = xmem.report.speedup_over(&base.report);
            writer.emit_with(base, &[("speedup", 1.0.into())]);
            writer.emit_with(pref, &[("speedup", s_pref.into())]);
            writer.emit_with(xmem, &[("speedup", s_xmem.into())]);
            pref_speedups[bi].push(s_pref);
            xmem_speedups[bi].push(s_xmem);
            gaps[bi].push(s_xmem / s_pref);
            row.push(format!("{s_pref:.2}"));
            row.push(format!("{s_xmem:.2}"));
        }
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!();
    for (bi, &bw) in bandwidths.iter().enumerate() {
        println!(
            "{bw} GB/s: XMem-Pref x{:.2}, XMem x{:.2}, XMem over XMem-Pref {:+.1}%   [paper gap: +13% / +19.5% / +31%]",
            geomean(&pref_speedups[bi]),
            geomean(&xmem_speedups[bi]),
            (geomean(&gaps[bi]) - 1.0) * 100.0
        );
    }
    writer.finish();
}
