//! Figure 6: effect of prefetching vs. full coordination across memory
//! bandwidths (§5.4).
//!
//! At the largest tile size, two XMem design points run against the
//! Baseline under 2 / 1 / 0.5 GB/s of per-core memory bandwidth:
//! *XMem-Pref* (guided prefetching only, DRRIP cache management) and *XMem*
//! (pinning + prefetching). The paper finds both help, with XMem ahead of
//! XMem-Pref by 13% / 19.5% / 31% as bandwidth shrinks — pinning saves
//! memory traffic, which matters more when bandwidth is scarce.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin fig6 [--quick]
//! ```

use workloads::polybench::PolybenchKernel;
use xmem_bench::{fig4_tiles, geomean, print_table, quick_mode, uc1_params, UC1_L3, UC1_N};
use xmem_sim::{run_kernel_bw, SystemKind};

fn main() {
    let n = if quick_mode() { 48 } else { UC1_N };
    let l3 = UC1_L3;
    let tile = *fig4_tiles().last().expect("non-empty sweep");
    let bandwidths = [4.0, 2.0, 1.0, 0.5];
    println!("# Figure 6: speedup over Baseline at the largest tile size");
    println!("# (per-core bandwidth sweep: 4 / 2 / 1 / 0.5 GB/s; the paper reports 2/1/0.5)\n");

    let headers: Vec<String> = [
        "kernel",
        "Pref@4",
        "XMem@4",
        "Pref@2",
        "XMem@2",
        "Pref@1",
        "XMem@1",
        "Pref@0.5",
        "XMem@0.5",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut gaps: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];
    let mut pref_speedups: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];
    let mut xmem_speedups: Vec<Vec<f64>> = vec![Vec::new(); bandwidths.len()];

    for kernel in PolybenchKernel::all() {
        let p = uc1_params(n, tile);
        let mut row = vec![kernel.name().to_string()];
        for (bi, &bw) in bandwidths.iter().enumerate() {
            let base = run_kernel_bw(kernel, &p, l3, SystemKind::Baseline, bw);
            let pref = run_kernel_bw(kernel, &p, l3, SystemKind::XmemPref, bw);
            let xmem = run_kernel_bw(kernel, &p, l3, SystemKind::Xmem, bw);
            let s_pref = pref.speedup_over(&base);
            let s_xmem = xmem.speedup_over(&base);
            pref_speedups[bi].push(s_pref);
            xmem_speedups[bi].push(s_xmem);
            gaps[bi].push(s_xmem / s_pref);
            row.push(format!("{s_pref:.2}"));
            row.push(format!("{s_xmem:.2}"));
        }
        // Reorder: the row currently holds [name, p2, x2, p1, x1, p.5, x.5]
        // in bandwidth-major order already.
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!();
    for (bi, &bw) in bandwidths.iter().enumerate() {
        println!(
            "{bw} GB/s: XMem-Pref x{:.2}, XMem x{:.2}, XMem over XMem-Pref {:+.1}%   [paper gap: +13% / +19.5% / +31%]",
            geomean(&pref_speedups[bi]),
            geomean(&xmem_speedups[bi]),
            (geomean(&gaps[bi]) - 1.0) * 100.0
        );
    }
}
