//! The overhead analysis of §4.2 and §4.4: storage, instructions, ALB
//! coverage, and context switches.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin overheads [--quick]
//! ```

use workloads::polybench::PolybenchKernel;
use xmem_bench::microbench::Timer;
use xmem_bench::reports::{require_complete, ReportWriter};
use xmem_bench::{mean, print_table, quick_mode, uc1_params, UC1_L3, UC1_N};
use xmem_core::aam::AamConfig;
use xmem_core::overhead::storage_overhead;
use xmem_core::process::ContextSwitchCost;
use xmem_sim::{
    run_workload, run_workload_with_telemetry, KernelRun, Sweep, SystemConfig, SystemKind,
};

fn main() {
    let n = if quick_mode() { 48 } else { UC1_N };

    // ---- §4.4(1): storage overheads (analytic, full-size 8 GB system) ----
    println!("# Storage overhead (S4.4(1)), 8 GB system, 256 atoms/app\n");
    let default_cfg = AamConfig {
        phys_bytes: 8 << 30,
        granularity: 512,
        id_bits: 8,
    };
    let small_cfg = AamConfig {
        phys_bytes: 8 << 30,
        granularity: 1024,
        id_bits: 6,
    };
    let d = storage_overhead(256, &default_cfg);
    let s = storage_overhead(256, &small_cfg);
    print_table(
        &["table".into(), "measured".into(), "paper".into()],
        &[
            vec![
                "AST (per app)".into(),
                format!("{} B", d.ast_bytes),
                "32 B".into(),
            ],
            vec![
                "GAT (per app, 19 B/atom)".into(),
                format!("{:.1} KB", d.gat_bytes as f64 / 1024.0),
                "2.8 KB".into(),
            ],
            vec![
                "AAM (512B units, 8-bit IDs)".into(),
                format!("{} MB = {:.2}%", d.aam_bytes >> 20, d.aam_fraction * 100.0),
                "16 MB = 0.2%".into(),
            ],
            vec![
                "AAM (1KB units, 6-bit IDs)".into(),
                format!("{:.2}%", s.aam_fraction * 100.0),
                "0.07%".into(),
            ],
        ],
    );

    // ---- §4.4(2) + §4.2: measured instruction overhead and ALB hit rate ----
    println!("\n# Instruction overhead (S4.4(2)) and ALB coverage (S4.2), measured\n");
    let mut overheads = Vec::new();
    let mut alb_rates = Vec::new();
    let mut rows = Vec::new();
    let mut writer = ReportWriter::new("overheads");
    let outcomes = writer
        .sweep(Sweep::new(
            PolybenchKernel::all()
                .into_iter()
                .map(|kernel| {
                    KernelRun::new(kernel, uc1_params(n, 8 << 10))
                        .l3_bytes(UC1_L3)
                        .system(SystemKind::Xmem)
                        .spec()
                })
                .collect(),
        ))
        .run_outcomes();
    let records = require_complete(&mut writer, outcomes);
    for (kernel, rec) in PolybenchKernel::all().into_iter().zip(&records) {
        let r = &rec.report;
        writer.emit(rec);
        overheads.push(r.instruction_overhead);
        if r.alb.lookups() > 0 {
            alb_rates.push(r.alb.hit_rate());
        }
        rows.push(vec![
            kernel.name().to_string(),
            format!("{}", r.xmem_instructions),
            format!("{:.4}%", r.instruction_overhead * 100.0),
            format!("{:.1}%", r.alb.hit_rate() * 100.0),
        ]);
    }
    print_table(
        &[
            "kernel".into(),
            "XMem insts".into(),
            "inst overhead".into(),
            "ALB hit rate".into(),
        ],
        &rows,
    );
    println!();
    println!(
        "instruction overhead: avg {:.4}%, max {:.4}%   [paper: 0.014% avg, 0.2% max]",
        mean(&overheads) * 100.0,
        overheads.iter().cloned().fold(0.0f64, f64::max) * 100.0
    );
    println!(
        "ALB hit rate (256 entries): avg {:.1}%   [paper: 98.9%]",
        mean(&alb_rates) * 100.0
    );

    // ---- §4.4(4): context switch ----
    println!("\n# Context switch overhead (S4.4(4))\n");
    let cost = ContextSwitchCost::default();
    println!(
        "extra instructions: {} ({} ns), flush: {} ns, total {} ns against a 3-5 us switch ({:.1}%-{:.1}%)",
        cost.extra_instructions,
        cost.register_ns,
        cost.flush_ns,
        cost.total_ns(),
        cost.overhead_fraction(5000.0) * 100.0,
        cost.overhead_fraction(3000.0) * 100.0,
    );
    // ---- telemetry sampling overhead (the disabled path must be free) ----
    // The sink's disabled cost is one always-false integer compare per op,
    // so the first two cases should be indistinguishable; the sampled case
    // bounds what `--epoch` costs a sweep.
    println!("\n# Telemetry sampling overhead (disabled path vs. epoch sampling)");
    let tp = uc1_params(if quick_mode() { 16 } else { 32 }, 2 << 10);
    let tcfg = SystemConfig::scaled_use_case1(UC1_L3, SystemKind::Xmem);
    let mut timer = Timer::new("full run, gemm");
    timer.case("telemetry absent (run_workload)", || {
        run_workload(&tcfg, |s| PolybenchKernel::Gemm.generate(&tp, s))
            .core
            .cycles
    });
    timer.case("telemetry disabled (epoch=None)", || {
        run_workload_with_telemetry(&tcfg, None, |s| PolybenchKernel::Gemm.generate(&tp, s))
            .0
            .core
            .cycles
    });
    timer.case("telemetry sampling (epoch=10k)", || {
        run_workload_with_telemetry(&tcfg, Some(10_000), |s| {
            PolybenchKernel::Gemm.generate(&tp, s)
        })
        .0
        .core
        .cycles
    });
    timer.finish();

    writer.finish();
}
