//! Table 1 demonstrators for the remaining optimization classes:
//! DRAM cache management, NUMA placement, and approximation in memory.
//! (Cache management and DRAM placement are Figs 4–8; compression and
//! hybrid memories have their own binaries.)
//!
//! ```text
//! cargo run --release -p xmem-bench --bin table1
//! ```

use cache_sim::dram_cache::{DramCache, DramCacheConfig};
use compress_sim::approx::{level_for, max_relative_error, store, TruncationLevel};
use cpu_sim::batch::OpAttrs;
use os_sim::numa::{NumaConfig, NumaSystem};
use xmem_bench::print_table;
use xmem_core::atom::AtomId;
use xmem_core::attrs::{AtomAttributes, DataProps, DataType, RwChar};
use xmem_sim::harness::{default_workers, run_jobs};

fn dram_cache_demo() {
    println!("## DRAM cache management (working-set-size hints)\n");
    let run = |with_hint: &bool| {
        let with_hint = *with_hint;
        let mut dc = DramCache::new(DramCacheConfig::default());
        let cap = 1u64 << 20;
        let huge = 16 * cap;
        let hot = cap / 4;
        let (mut hot_lat, mut hot_n) = (0u64, 0u64);
        for i in 0..400_000u64 {
            if i % 8 != 7 {
                dc.serve(0x1000_0000 + (i * 64) % huge, with_hint.then_some(huge));
            } else {
                hot_lat += dc.serve(((i * 2654435761) % hot) & !63, with_hint.then_some(hot));
                hot_n += 1;
            }
        }
        (hot_lat as f64 / hot_n as f64, dc.stats().bypassed)
    };
    // The two variants are independent simulations: run them concurrently
    // on the harness pool.
    let variants = [false, true];
    let results = run_jobs(variants.len(), default_workers(), |i| run(&variants[i]));
    let (base, _) = results[0];
    let (xmem, bypassed) = results[1];
    print_table(
        &[
            "system".into(),
            "hot-data latency".into(),
            "bypassed".into(),
        ],
        &[
            vec!["Baseline".into(), format!("{base:.0} cyc"), "0".into()],
            vec![
                "XMem".into(),
                format!("{xmem:.0} cyc"),
                format!("{bypassed}"),
            ],
        ],
    );
    println!(
        "-> knowing the stream's working set exceeds capacity, the cache\n   bypasses it and the cacheable data keeps its hits\n"
    );
}

fn numa_demo() {
    println!("## NUMA placement (private/shared + read-only attributes)\n");
    let cfg = NumaConfig::default();
    let table = AtomId::new(10);
    let attrs_ro = AtomAttributes::builder().rw(RwChar::ReadOnly).build();
    let attrs_priv = AtomAttributes::builder().props(DataProps::PRIVATE).build();

    let mut ft = NumaSystem::new(cfg);
    let mut xm = NumaSystem::new(cfg);
    ft.place_first_touch(table, 0);
    xm.place_with_semantics(table, &attrs_ro, None);
    for w in 0..4u8 {
        ft.place_first_touch(AtomId::new(w), 0);
        xm.place_with_semantics(AtomId::new(w), &attrs_priv, Some(w as usize));
    }
    for i in 0..100_000u64 {
        let w = (i % 4) as u8;
        let atom = if i % 3 == 0 { table } else { AtomId::new(w) };
        let at = OpAttrs::read().on_socket(w).with_salt(i);
        ft.serve(atom, at);
        xm.serve(atom, at);
    }
    print_table(
        &["system".into(), "avg latency".into(), "remote".into()],
        &[
            vec![
                "First-touch".into(),
                format!("{:.0} cyc", ft.avg_latency()),
                format!("{:.0}%", ft.remote_fraction() * 100.0),
            ],
            vec![
                "XMem".into(),
                format!("{:.0} cyc", xm.avg_latency()),
                format!("{:.0}%", xm.remote_fraction() * 100.0),
            ],
        ],
    );
    println!("-> private buffers co-locate with their workers; the read-only\n   table replicates — no profiling, no migration\n");
}

fn approx_demo() {
    println!("## Approximation in memory (APPROXIMABLE attribute)\n");
    let values: Vec<f64> = (1..4096).map(|i| (i as f64).sqrt() * 1.37).collect();
    let approximable = AtomAttributes::builder()
        .data_type(DataType::Float64)
        .props(DataProps::APPROXIMABLE)
        .build();
    let exact_only = AtomAttributes::builder()
        .data_type(DataType::Float64)
        .build();
    let mut rows = Vec::new();
    for req in [0u8, 2, 4] {
        let level = level_for(&approximable, TruncationLevel(req));
        let (approx, bytes) = store(&values, level);
        rows.push(vec![
            format!("approximable, drop {req}B"),
            format!("{:.0}%", bytes as f64 / (values.len() * 8) as f64 * 100.0),
            format!("{:.1e}", max_relative_error(&values, &approx)),
        ]);
    }
    let level = level_for(&exact_only, TruncationLevel(4));
    let (approx, bytes) = store(&values, level);
    rows.push(vec![
        "not approximable (forced exact)".into(),
        format!("{:.0}%", bytes as f64 / (values.len() * 8) as f64 * 100.0),
        format!("{:.1e}", max_relative_error(&values, &approx)),
    ]);
    print_table(&["atom".into(), "size".into(), "max rel err".into()], &rows);
    println!("-> only atoms that declare tolerance get truncated; the attribute\n   makes the optimization safe to apply automatically\n");
}

fn main() {
    println!("# Table 1 demonstrators: the remaining optimization classes\n");
    dram_cache_demo();
    numa_demo();
    approx_demo();
}
