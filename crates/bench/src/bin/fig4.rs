//! Figure 4: execution time vs. tile size for 12 tiled kernels, Baseline
//! vs. XMem (§5.4 of the paper).
//!
//! The paper's observations this run reproduces:
//! * small tiles lose reuse (avg 28.7% slower than the best tile, up to 2×);
//! * tiles larger than the cache thrash the baseline (avg 64.8% slower, up
//!   to 7.6×);
//! * XMem cuts the oversized-tile loss to ~26.9% avg (up to 4.6×) through
//!   pinning + guided prefetch.
//!
//! The whole figure — 12 kernels × 9 tiles × 2 systems — is one parallel
//! [`Sweep`]; records land in spec order, so the table below is identical
//! to the old serial loops.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin fig4 [--quick] [--csv]
//! ```

use workloads::polybench::PolybenchKernel;
use xmem_bench::reports::{require_complete, ReportWriter};
use xmem_bench::{
    fig4_tiles, fmt_bytes, geomean, print_table, quick_mode, uc1_params, UC1_L3, UC1_N,
};
use xmem_sim::{KernelRun, RunRecord, RunSpec, Sweep, SystemKind};

fn main() {
    let n = if quick_mode() { 48 } else { UC1_N };
    let tiles = fig4_tiles();
    let l3 = UC1_L3;
    println!(
        "# Figure 4: execution time vs. tile size (L3 = {}, n = {n})",
        fmt_bytes(l3)
    );
    println!("# Values are execution time normalized to each kernel's best Baseline tile.\n");

    // One spec per (kernel, system, tile), kernel-major so the records
    // slice back into per-kernel chunks.
    let kernels = PolybenchKernel::all();
    let systems = [SystemKind::Baseline, SystemKind::Xmem];
    let specs: Vec<RunSpec> = kernels
        .iter()
        .flat_map(|&kernel| {
            systems.iter().flat_map(move |&kind| {
                fig4_tiles().into_iter().map(move |t| {
                    let mut spec = KernelRun::new(kernel, uc1_params(n, t))
                        .l3_bytes(UC1_L3)
                        .system(kind)
                        .spec();
                    spec.label = format!("{}/{kind}/tile={}", kernel.name(), fmt_bytes(t));
                    spec
                })
            })
        })
        .collect();
    let mut writer = ReportWriter::new("fig4");
    let outcomes = writer.sweep(Sweep::new(specs)).run_outcomes();
    let records = require_complete(&mut writer, outcomes);

    let mut small_tile_slowdowns = Vec::new();
    let mut large_base_slowdowns = Vec::new();
    let mut large_xmem_slowdowns = Vec::new();
    let mut max_base: f64 = 0.0;
    let mut max_xmem: f64 = 0.0;

    let mut headers = vec!["kernel".to_string(), "system".to_string()];
    headers.extend(tiles.iter().map(|t| fmt_bytes(*t)));
    let mut rows = Vec::new();

    for (ki, kernel) in kernels.iter().enumerate() {
        let chunk = &records[ki * 2 * tiles.len()..(ki + 1) * 2 * tiles.len()];
        let (base_recs, xmem_recs) = chunk.split_at(tiles.len());
        let best = base_recs
            .iter()
            .map(|r| r.report.cycles())
            .min()
            .expect("non-empty sweep") as f64;

        let norm = |recs: &[RunRecord]| -> Vec<f64> {
            recs.iter()
                .map(|r| r.report.cycles() as f64 / best)
                .collect()
        };
        let base_n = norm(base_recs);
        let xmem_n = norm(xmem_recs);
        for (r, &slowdown) in chunk.iter().zip(base_n.iter().chain(&xmem_n)) {
            writer.emit_with(r, &[("normalized_time", slowdown.into())]);
        }

        small_tile_slowdowns.push(base_n[0]);
        // "Largest tiles": every tile at or beyond the cache size (the
        // paper's largest tile equals its L3; our sweep extends past it).
        for (i, &t) in tiles.iter().enumerate() {
            if t >= l3 {
                large_base_slowdowns.push(base_n[i]);
                large_xmem_slowdowns.push(xmem_n[i]);
                max_base = max_base.max(base_n[i]);
                max_xmem = max_xmem.max(xmem_n[i]);
            }
        }

        let fmt = |v: &[f64]| v.iter().map(|x| format!("{x:.2}")).collect::<Vec<_>>();
        let mut row = vec![kernel.name().to_string(), "Baseline".to_string()];
        row.extend(fmt(&base_n));
        rows.push(row);
        let mut row = vec![String::new(), "XMem".to_string()];
        row.extend(fmt(&xmem_n));
        rows.push(row);
    }
    print_table(&headers, &rows);

    println!();
    println!(
        "smallest tile vs best (Baseline): avg {:+.1}%   [paper: +28.7% avg, up to 2x]",
        (geomean(&small_tile_slowdowns) - 1.0) * 100.0
    );
    println!(
        "largest tile vs best  (Baseline): avg {:+.1}%, max {:.1}x   [paper: +64.8% avg, up to 7.6x]",
        (geomean(&large_base_slowdowns) - 1.0) * 100.0,
        max_base
    );
    println!(
        "largest tile vs best  (XMem):     avg {:+.1}%, max {:.1}x   [paper: +26.9% avg, up to 4.6x]",
        (geomean(&large_xmem_slowdowns) - 1.0) * 100.0,
        max_xmem
    );
    writer.finish();
}
