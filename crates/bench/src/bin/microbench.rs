//! The pinned perf trajectory: per-layer simulator throughput (ops/sec).
//!
//! Measures each memory-path layer in isolation (cache probe/fill, DRAM
//! bank timing, page-table translate, TLB lookup, full hierarchy) plus the
//! end-to-end fig5 inner loop (`run_workload` on one fig5 grid point), and
//! writes the numbers as JSON so successive commits can be compared.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin microbench [-- --out=PATH]
//! ```
//!
//! `BENCH_baseline.json` at the repo root is the committed baseline
//! (measured on the scalar per-op path before the batched `MemoryPath`
//! API); CI uploads a fresh `BENCH_<sha>.json` artifact on every run. See
//! EXPERIMENTS.md ("Reading the perf trajectory") for the walkthrough.

use cache_sim::{Cache, CacheConfig, Hierarchy, HierarchyConfig, InsertPriority};
use cpu_sim::batch::OpAttrs;
use dram_sim::{AddressMapping, Dram, DramConfig};
use os_sim::{PageTable, Tlb, TlbConfig};
use workloads::polybench::PolybenchKernel;
use xmem_bench::microbench::{BenchRow, Timer};
use xmem_bench::{uc1_params, FIG5_L3};
use xmem_core::addr::VirtAddr;
use xmem_core::rng::SplitMix64;
use xmem_sim::{RunSpec, SystemConfig, SystemKind, WorkloadSpec};

/// Simulated operations per timed iteration for the layer microbenches.
const OPS: usize = 4096;

/// A deterministic stream of line-aligned addresses over `span` bytes.
fn addr_stream(seed: u64, span: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    (0..OPS).map(|_| rng.below(span / 64) * 64).collect()
}

fn bench_layers(t: &mut Timer) {
    // L3-like cache: probe, fill on miss. Working set 4x the cache so the
    // loop exercises both hits and the replacement path.
    let addrs = addr_stream(1, 256 << 10);
    let mut cache = Cache::new(CacheConfig::l3_westmere().with_size(64 << 10));
    t.case_ops("cache.l3", OPS as u64, || {
        let mut sum = 0u64;
        for &a in &addrs {
            if !cache.probe(a, false) {
                cache.fill(a, false, InsertPriority::Normal);
                sum += 1;
            }
        }
        sum
    });

    // DRAM bank timing over a hot working set (row hits and conflicts).
    let addrs = addr_stream(2, 16 << 20);
    let mut dram = Dram::new(
        DramConfig::ddr3_1066(3.6).with_capacity(64 << 20),
        AddressMapping::scheme1(),
    );
    let mut now = 0u64;
    t.case_ops("dram", OPS as u64, || {
        let mut sum = 0u64;
        for &a in &addrs {
            now += 4;
            sum += dram.serve(a, OpAttrs::read(), now);
        }
        sum
    });

    // Page-table translate: 1024 mapped pages, random lookups.
    let mut pt = PageTable::new(4096);
    for vpn in 0..1024 {
        pt.map_page(vpn, 2048 - vpn);
    }
    let vas = addr_stream(3, 1024 * 4096);
    t.case_ops("pagetable", OPS as u64, || {
        let mut sum = 0u64;
        for &va in &vas {
            use xmem_core::amu::Mmu;
            sum += pt
                .translate(VirtAddr::new(va))
                .map(|p| p.raw())
                .unwrap_or(0);
        }
        sum
    });

    // TLB: footprint 4x the 64-entry reach, so hits and walk-miss evictions
    // both show up.
    let mut tlb = Tlb::new(TlbConfig::default());
    let vas = addr_stream(4, 256 * 4096);
    t.case_ops("tlb", OPS as u64, || {
        let mut sum = 0u64;
        for &va in &vas {
            sum += tlb.translate_cost(VirtAddr::new(va));
        }
        sum
    });

    // Full cache hierarchy + DRAM behind it (no XMem context).
    let addrs = addr_stream(5, 1 << 20);
    let mut hier = Hierarchy::new(
        HierarchyConfig::westmere_like().with_l3_size(64 << 10),
        Dram::new(
            DramConfig::ddr3_1066(3.6).with_capacity(64 << 20),
            AddressMapping::scheme1(),
        ),
    );
    let mut now = 0u64;
    t.case_ops("hierarchy", OPS as u64, || {
        let mut sum = 0u64;
        for &a in &addrs {
            now += 4;
            sum += hier.serve(a, false, now, None);
        }
        sum
    });
}

fn bench_fig5_inner(t: &mut Timer) {
    // One fig5 grid point at --quick size: gemm, tile tuned for the full
    // L3. The instruction count is fixed by the workload, so ops/sec here
    // is simulated instructions per wall-clock second. Runs through
    // `RunSpec::execute` — the monomorphized path the sweep engine uses.
    let p = uc1_params(48, 64 << 10);
    for kind in [SystemKind::Baseline, SystemKind::Xmem] {
        let cfg = SystemConfig::scaled_use_case1(FIG5_L3, kind);
        let spec = RunSpec::new(
            "fig5.inner",
            cfg,
            WorkloadSpec::Kernel {
                kernel: PolybenchKernel::Gemm,
                params: p,
            },
        );
        let instructions = spec.execute().core.instructions;
        let name = match kind {
            SystemKind::Baseline => "fig5.inner.baseline",
            _ => "fig5.inner.xmem",
        };
        t.case_ops(name, instructions, || spec.execute().core.cycles);
    }
}

/// Renders the rows as the `xmem-microbench-v1` JSON document.
fn render_json(rows: &[BenchRow]) -> String {
    let mut s = String::from("{\n  \"schema\": \"xmem-microbench-v1\",\n  \"cases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.1}, \"ops_per_iter\": {}, \
             \"ops_per_sec\": {:.1}}}{}\n",
            r.name,
            r.median_ns,
            r.ops_per_iter,
            r.ops_per_sec(),
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn main() {
    let out = std::env::args().find_map(|a| {
        a.strip_prefix("--out=")
            .map(|p| std::path::PathBuf::from(p))
    });
    println!("# Memory-path microbenchmarks (ops/sec per layer)");
    let mut t = Timer::new("microbench");
    bench_layers(&mut t);
    bench_fig5_inner(&mut t);
    let rows = t.finish();
    if let Some(path) = out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).expect("create output directory");
            }
        }
        std::fs::write(&path, render_json(&rows)).expect("write bench JSON");
        println!("\nwrote {}", path.display());
    }
}
