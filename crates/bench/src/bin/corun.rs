//! Co-run experiment: the scenario that motivates use case 1 (§5.1 —
//! "the available cache space at runtime is less than what the program was
//! optimized for ... as a result of co-running applications").
//!
//! A tiled kernel tuned for the whole shared L3 runs alongside 0–3
//! streaming co-runners on the multi-core machine (shared L3 + DRAM).
//! Baseline vs. XMem: with XMem, the kernel's tile is pinned (and the hogs
//! honestly declare zero reuse), so the kernel keeps its working set.
//!
//! All 20 multi-core simulations (4 kernels × {solo, 2 hog counts × 2
//! systems}) run concurrently on the harness worker pool.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin corun [--quick]
//! ```

use workloads::hog::stream_hog;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::{LogSink, TraceEvent};
use xmem_bench::{geomean, print_table, quick_mode};
use xmem_sim::harness::{default_workers, run_jobs, Progress};
use xmem_sim::{run_corun, MultiCoreConfig, SystemKind};

fn kernel_log(kernel: PolybenchKernel, n: usize, tile: u64) -> Vec<TraceEvent> {
    let mut log = LogSink::new();
    kernel.generate(
        &KernelParams {
            n,
            tile_bytes: tile,
            steps: 6,
            reuse: 200,
        },
        &mut log,
    );
    log.into_events()
}

fn hog_log(bytes: u64, accesses: u64) -> Vec<TraceEvent> {
    let mut log = LogSink::new();
    stream_hog(&mut log, bytes, accesses, 24);
    log.into_events()
}

fn main() {
    let n = if quick_mode() { 48 } else { 80 };
    let l3 = 32 << 10;
    let tile = 16 << 10; // half the shared L3: fits alone, contested co-run
    let kernels = [
        PolybenchKernel::Gemm,
        PolybenchKernel::Syrk,
        PolybenchKernel::Trmm,
        PolybenchKernel::Jacobi2d,
    ];
    println!(
        "# Co-run: kernel + N streaming hogs on a shared {}KB L3",
        l3 >> 10
    );
    println!("# Values: kernel slowdown vs. running alone on the Baseline.\n");

    // Enumerate every (config, logs) job, kernel-major: solo first, then
    // (hogs, system) pairs in table order.
    let hog = hog_log(256 << 10, 60_000);
    let mut jobs: Vec<(MultiCoreConfig, Vec<Vec<TraceEvent>>)> = Vec::new();
    for kernel in kernels {
        let klog = kernel_log(kernel, n, tile);
        jobs.push((
            MultiCoreConfig::scaled_corun(1, l3, SystemKind::Baseline),
            vec![klog.clone()],
        ));
        for hogs in [1usize, 3] {
            for kind in [SystemKind::Baseline, SystemKind::Xmem] {
                let mut logs = vec![klog.clone()];
                logs.extend((0..hogs).map(|_| hog.clone()));
                jobs.push((MultiCoreConfig::scaled_corun(1 + hogs, l3, kind), logs));
            }
        }
    }
    let progress = Progress::new("corun", jobs.len());
    let reports = run_jobs(jobs.len(), default_workers(), |i| {
        let r = run_corun(&jobs[i].0, &jobs[i].1);
        progress.tick(false);
        r
    });
    progress.finish();

    let headers: Vec<String> = [
        "kernel",
        "solo",
        "+1 hog B",
        "+1 hog X",
        "+3 hogs B",
        "+3 hogs X",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut base3 = Vec::new();
    let mut xmem3 = Vec::new();

    const PER_KERNEL: usize = 5;
    for (ki, kernel) in kernels.iter().enumerate() {
        let chunk = &reports[ki * PER_KERNEL..(ki + 1) * PER_KERNEL];
        let reference = chunk[0].cycles(0) as f64;
        let mut row = vec![kernel.name().to_string(), "1.00".to_string()];
        for (ci, report) in chunk.iter().enumerate().skip(1) {
            let slowdown = report.cycles(0) as f64 / reference;
            row.push(format!("{slowdown:.2}"));
            // Jobs 3 and 4 within a chunk are the 3-hog Baseline/XMem runs.
            if ci == 3 {
                base3.push(slowdown);
            } else if ci == 4 {
                xmem3.push(slowdown);
            }
        }
        rows.push(row);
    }
    print_table(&headers, &rows);
    println!();
    println!(
        "with 3 hogs: Baseline slowdown {:+.0}%, XMem {:+.0}% — XMem retains the tile under contention",
        (geomean(&base3) - 1.0) * 100.0,
        (geomean(&xmem3) - 1.0) * 100.0,
    );
}
