//! Multi-programmed DRAM placement: §6.2's "based on the program semantics
//! of *all co-running applications*, the OS decides how to map atoms to
//! DRAM channels and banks".
//!
//! Pairs of placement workloads run on two cores sharing the memory
//! system. The XMem OS sees the merged atom set of both programs and
//! partitions banks accordingly; the baseline uses randomized allocation
//! on the best static mapping. All pair × system simulations run
//! concurrently on the harness worker pool.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin corun_placement [--quick]
//! ```

use dram_sim::AddressMapping;
use workloads::placement::PlacementWorkload;
use workloads::sink::{LogSink, TraceEvent};
use xmem_bench::{geomean, print_table, quick_mode};
use xmem_sim::harness::{default_workers, run_jobs, Progress};
use xmem_sim::{run_corun, FramePolicyKind, MultiCoreConfig, SystemKind};

fn log_of(name: &str, accesses: u64) -> Vec<TraceEvent> {
    let mut w = PlacementWorkload::by_name(name).unwrap_or_else(|| {
        eprintln!("corun_placement: unknown workload `{name}`");
        std::process::exit(2);
    });
    w.accesses = accesses;
    let mut log = LogSink::new();
    w.generate(&mut log);
    log.into_events()
}

fn config(xmem: bool) -> MultiCoreConfig {
    // Full-size hierarchy (uc2 uses Table 3 caches), two cores.
    let mut cfg = MultiCoreConfig::westmere_like(2);
    cfg.phys_bytes = 64 << 20;
    cfg.dram = dram_sim::DramConfig::ddr3_1066(3.6).with_capacity(64 << 20);
    if xmem {
        cfg.mapping = AddressMapping::scheme5();
        cfg.frame_policy = FramePolicyKind::XmemPlacement;
        // Placement is software-only (§6): caches stay at baseline, but the
        // AMU must be live for the OS to use the atoms — mode PrefetchOnly
        // with no reuse expressed keeps cache behaviour identical.
        cfg.xmem = SystemKind::Baseline.xmem_mode();
    } else {
        cfg.mapping = AddressMapping::scheme1();
        cfg.frame_policy = FramePolicyKind::Randomized { seed: 0xA70 };
    }
    cfg
}

fn main() {
    let accesses = if quick_mode() { 30_000 } else { 150_000 };
    let pairs = [
        ("milc", "kmeans"),
        ("srad", "sphinx3"),
        ("cactus", "soplex"),
        ("zeusmp", "leslie3d"),
        ("mcf", "milc"),
    ];
    println!("# Multi-programmed DRAM placement (2 cores, shared memory)\n");

    // Pair-major jobs: (baseline, xmem) per pair.
    let jobs: Vec<(MultiCoreConfig, Vec<Vec<TraceEvent>>)> = pairs
        .iter()
        .flat_map(|&(a, b)| {
            let logs = vec![log_of(a, accesses), log_of(b, accesses)];
            [(config(false), logs.clone()), (config(true), logs)]
        })
        .collect();
    let progress = Progress::new("corun_placement", jobs.len());
    let reports = run_jobs(jobs.len(), default_workers(), |i| {
        let r = run_corun(&jobs[i].0, &jobs[i].1);
        progress.tick(false);
        r
    });
    progress.finish();

    let headers: Vec<String> = [
        "pair",
        "A speedup",
        "B speedup",
        "row-hit base",
        "row-hit xmem",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut speedups = Vec::new();

    for (pi, (a, b)) in pairs.iter().enumerate() {
        let (base, xmem) = (&reports[pi * 2], &reports[pi * 2 + 1]);
        let sa = base.cycles(0) as f64 / xmem.cycles(0) as f64;
        let sb = base.cycles(1) as f64 / xmem.cycles(1) as f64;
        speedups.push(sa);
        speedups.push(sb);
        rows.push(vec![
            format!("{a}+{b}"),
            format!("{sa:.3}"),
            format!("{sb:.3}"),
            format!("{:.3}", base.dram.row_hit_rate()),
            format!("{:.3}", xmem.dram.row_hit_rate()),
        ]);
    }
    print_table(&headers, &rows);
    println!(
        "\navg per-program speedup from co-run-aware placement: {:+.1}%",
        (geomean(&speedups) - 1.0) * 100.0
    );
}
