//! `xmemcli` — run any experiment from the command line.
//!
//! ```text
//! xmemcli kernel gemm --n 96 --tile 64K --l3 32K --system xmem [--tlb] [--json]
//! xmemcli placement milc --system xmem [--accesses 150000] [--json]
//! xmemcli trace gemm --epoch 10000 --out /tmp/gemm-trace.json --system xmem
//! xmemcli record gemm --out /tmp/gemm.trace --n 48 --tile 8K
//! xmemcli replay /tmp/gemm.trace --l3 32K --system baseline [--json]
//! xmemcli list
//! ```
//!
//! `--json` replaces the human-readable report with one structured
//! `xmem-report-v1` document on stdout (same schema as the fig* reports).
//! `trace` runs a kernel with epoch-sampled cross-layer telemetry, prints
//! the per-epoch table, and with `--out` writes a Chrome trace-format JSON
//! openable in `chrome://tracing` or Perfetto.

use std::fs::File;
use std::process::exit;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::LogSink;
use workloads::trace_file::{read_trace, replay, write_trace};
use xmem_bench::print_table;
use xmem_sim::{
    placement_specs, run_workload, run_workload_with_telemetry, ChromeTrace, JsonSink, JsonValue,
    ReportSink, RunRecord, RunReport, RunSpec, Sweep, SystemConfig, SystemKind, TelemetrySeries,
    Uc2System, WorkloadSpec, DEFAULT_EPOCH_INSTRUCTIONS,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         xmemcli kernel <name> [--n N] [--tile BYTES] [--l3 BYTES] [--steps K]\n          \
         [--system baseline|pref|xmem] [--bw GBPS] [--tlb] [--json]\n  \
         xmemcli placement <name> [--system baseline|xmem|ideal] [--accesses N] [--json]\n  \
         xmemcli trace <kernel> [--epoch N] [--out TRACE.json] [kernel flags] [--json]\n  \
         xmemcli record <kernel> --out FILE [--n N] [--tile BYTES] [--steps K]\n  \
         xmemcli replay <FILE> [--l3 BYTES] [--system ...] [--tlb] [--json]\n  \
         xmemcli list"
    );
    exit(2)
}

/// Parses "64K", "2M", or plain bytes.
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

#[derive(Debug)]
struct Flags {
    n: usize,
    tile: u64,
    l3: u64,
    steps: usize,
    system: SystemKind,
    uc2: Uc2System,
    bw: Option<f64>,
    tlb: bool,
    accesses: Option<u64>,
    out: Option<String>,
    json: bool,
    epoch: Option<u64>,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            n: 96,
            tile: 16 << 10,
            l3: 32 << 10,
            steps: 12,
            system: SystemKind::Baseline,
            uc2: Uc2System::Baseline,
            bw: None,
            tlb: false,
            accesses: None,
            out: None,
            json: false,
            epoch: None,
        }
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags::default();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--n" => f.n = value(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--tile" => f.tile = parse_bytes(&value(args, &mut i)).unwrap_or_else(|| usage()),
            "--l3" => f.l3 = parse_bytes(&value(args, &mut i)).unwrap_or_else(|| usage()),
            "--steps" => f.steps = value(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--bw" => f.bw = Some(value(args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--accesses" => {
                f.accesses = Some(value(args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--out" => f.out = Some(value(args, &mut i)),
            "--epoch" => {
                let n: u64 = value(args, &mut i).parse().unwrap_or_else(|_| usage());
                if n == 0 {
                    usage();
                }
                f.epoch = Some(n);
            }
            "--tlb" => f.tlb = true,
            "--json" => f.json = true,
            "--system" => match value(args, &mut i).as_str() {
                "baseline" => {
                    f.system = SystemKind::Baseline;
                    f.uc2 = Uc2System::Baseline;
                }
                "pref" => f.system = SystemKind::XmemPref,
                "xmem" => {
                    f.system = SystemKind::Xmem;
                    f.uc2 = Uc2System::Xmem;
                }
                "ideal" => f.uc2 = Uc2System::IdealRbl,
                _ => usage(),
            },
            _ => usage(),
        }
        i += 1;
    }
    f
}

fn kernel_by_name(name: &str) -> PolybenchKernel {
    PolybenchKernel::extended()
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown kernel '{name}'; see `xmemcli list`");
            exit(2)
        })
}

fn print_report(r: &RunReport) {
    println!("cycles:           {}", r.cycles());
    println!("instructions:     {}", r.core.instructions);
    println!("ipc:              {:.3}", r.core.ipc());
    println!("avg load latency: {:.1} cyc", r.core.avg_load_latency());
    println!(
        "L1/L2/L3 hit:     {:.1}% / {:.1}% / {:.1}%",
        r.l1.hit_rate() * 100.0,
        r.l2.hit_rate() * 100.0,
        r.l3.hit_rate() * 100.0
    );
    println!(
        "DRAM:             {} reads ({} demand), {} writes, row-hit {:.1}%",
        r.dram.reads,
        r.dram.demand_reads,
        r.dram.writes,
        r.dram.row_hit_rate() * 100.0
    );
    println!(
        "demand read lat:  avg {:.0}, p50 {}, p99 {} cyc",
        r.dram.avg_demand_read_latency(),
        r.dram.demand_read_hist.percentile(0.5),
        r.dram.demand_read_hist.percentile(0.99)
    );
    println!(
        "XMem:             {} instructions ({:.4}% overhead), ALB {:.1}% of {} lookups",
        r.xmem_instructions,
        r.instruction_overhead * 100.0,
        r.alb.hit_rate() * 100.0,
        r.alb.lookups()
    );
}

/// Prints either the human-readable report or, with `--json`, the full
/// structured record (config + stats + derived metrics).
fn emit(f: &Flags, record: &RunRecord) {
    if f.json {
        let mut sink = JsonSink::new();
        sink.emit(record).expect("JSON sink accepts any record");
        println!("{}", sink.render());
    } else {
        print_report(&record.report);
    }
}

fn sys_config(f: &Flags) -> SystemConfig {
    let mut cfg = SystemConfig::scaled_use_case1(f.l3, f.system);
    if let Some(bw) = f.bw {
        cfg = cfg.with_per_core_bandwidth(bw);
    }
    if f.tlb {
        cfg = cfg.with_tlb();
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            println!("kernels:");
            for k in PolybenchKernel::extended() {
                println!("  {}", k.name());
            }
            println!("placement workloads:");
            for w in PlacementWorkload::all() {
                println!("  {}", w.name);
            }
        }
        "kernel" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let kernel = kernel_by_name(name);
            let p = KernelParams {
                n: f.n,
                tile_bytes: f.tile,
                steps: f.steps,
                reuse: 200,
            };
            let cfg = sys_config(&f);
            if !f.json {
                println!(
                    "# {} n={} tile={} l3={} system={}\n",
                    name, f.n, f.tile, f.l3, f.system
                );
            }
            let spec = RunSpec::new(
                format!("{name}/{}", f.system),
                cfg,
                WorkloadSpec::kernel(kernel, p),
            );
            let records = Sweep::new(vec![spec]).run();
            emit(&f, &records[0]);
        }
        "placement" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let mut w = PlacementWorkload::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload '{name}'; see `xmemcli list`");
                exit(2)
            });
            if let Some(a) = f.accesses {
                w.accesses = a;
            }
            if !f.json {
                println!("# {} system={}\n", name, f.uc2);
            }
            let Some(best) = Sweep::new(placement_specs(&w, f.uc2)).best() else {
                eprintln!("placement sweep produced no completed records");
                exit(1)
            };
            emit(&f, &best);
        }
        "record" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let Some(out) = f.out.clone() else { usage() };
            let kernel = kernel_by_name(name);
            let p = KernelParams {
                n: f.n,
                tile_bytes: f.tile,
                steps: f.steps,
                reuse: 200,
            };
            let mut log = LogSink::new();
            kernel.generate(&p, &mut log);
            let events = log.into_events();
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            write_trace(&events, file).unwrap_or_else(|e| {
                eprintln!("write failed: {e}");
                exit(1)
            });
            println!("recorded {} events to {out}", events.len());
        }
        "replay" => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let file = File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            let events = read_trace(file).unwrap_or_else(|e| {
                eprintln!("bad trace: {e}");
                exit(1)
            });
            let cfg = sys_config(&f);
            if !f.json {
                println!(
                    "# replay {path} ({} events) l3={} system={}\n",
                    events.len(),
                    f.l3,
                    f.system
                );
            }
            let report = run_workload(&cfg, |s| replay(&events, s));
            let record = RunRecord {
                label: format!("replay/{}", f.system),
                config: cfg,
                workload: "replay",
                // A raw trace has no stored parameterization.
                workload_params: JsonValue::Null,
                report,
                telemetry: None,
                sampling: None,
                run: None,
            };
            emit(&f, &record);
        }
        "trace" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let kernel = kernel_by_name(name);
            let p = KernelParams {
                n: f.n,
                tile_bytes: f.tile,
                steps: f.steps,
                reuse: 200,
            };
            let cfg = sys_config(&f);
            let epoch = f.epoch.unwrap_or(DEFAULT_EPOCH_INSTRUCTIONS);
            let label = format!("{name}/{}", f.system);
            let (report, series) =
                run_workload_with_telemetry(&cfg, Some(epoch), |s| kernel.generate(&p, s));
            let series = series.expect("telemetry was enabled");
            let record = RunRecord {
                label: label.clone(),
                config: cfg,
                workload: kernel.name(),
                workload_params: WorkloadSpec::kernel(kernel, p).params_json(),
                report,
                telemetry: Some(series.clone()),
                sampling: None,
                run: None,
            };
            if f.json {
                emit(&f, &record);
            } else {
                println!(
                    "# trace {label} epoch={epoch} ({} samples over {} instructions)\n",
                    series.samples.len(),
                    record.report.core.instructions
                );
                print_series(&series);
            }
            if let Some(out) = &f.out {
                let mut trace = ChromeTrace::new();
                trace.add_series(&label, &series, cfg.core.freq_ghz);
                std::fs::write(out, trace.render()).unwrap_or_else(|e| {
                    eprintln!("cannot write {out}: {e}");
                    exit(1)
                });
                eprintln!("wrote Chrome trace to {out} (open in chrome://tracing or Perfetto)");
            }
        }
        _ => usage(),
    }
}

/// The per-epoch telemetry table `xmemcli trace` prints: one row per
/// sampled epoch, cross-layer columns left to right (core → caches →
/// DRAM → XMem).
fn print_series(series: &TelemetrySeries) {
    let headers: Vec<String> = [
        "instr",
        "ipc",
        "l1 mpki",
        "l2 mpki",
        "l3 mpki",
        "row-hit",
        "bank-busy",
        "queue",
        "alb-hit",
        "pf use/iss",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let rows: Vec<Vec<String>> = series
        .samples
        .iter()
        .map(|s| {
            vec![
                s.instructions.to_string(),
                format!("{:.3}", s.ipc),
                format!("{:.2}", s.l1_mpki),
                format!("{:.2}", s.l2_mpki),
                format!("{:.2}", s.l3_mpki),
                format!("{:.1}%", s.row_hit_rate * 100.0),
                format!("{:.1}%", s.bank_busy_fraction * 100.0),
                format!("{:.1}", s.queue_depth),
                format!("{:.1}%", s.alb_hit_rate * 100.0),
                format!("{}/{}", s.prefetch_useful, s.prefetch_issued),
            ]
        })
        .collect();
    print_table(&headers, &rows);
}
