//! `xmemcli` — run any experiment from the command line.
//!
//! ```text
//! xmemcli kernel gemm --n 96 --tile 64K --l3 32K --system xmem [--tlb] [--json]
//! xmemcli placement milc --system xmem [--accesses 150000] [--json]
//! xmemcli record gemm --out /tmp/gemm.trace --n 48 --tile 8K
//! xmemcli replay /tmp/gemm.trace --l3 32K --system baseline [--json]
//! xmemcli list
//! ```
//!
//! `--json` replaces the human-readable report with one structured
//! `xmem-report-v1` document on stdout (same schema as the fig* reports).

use std::fs::File;
use std::process::exit;
use workloads::placement::PlacementWorkload;
use workloads::polybench::{KernelParams, PolybenchKernel};
use workloads::sink::LogSink;
use workloads::trace_file::{read_trace, replay, write_trace};
use xmem_sim::{
    placement_specs, run_workload, JsonSink, JsonValue, ReportSink, RunRecord, RunReport, RunSpec,
    Sweep, SystemConfig, SystemKind, Uc2System, WorkloadSpec,
};

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         xmemcli kernel <name> [--n N] [--tile BYTES] [--l3 BYTES] [--steps K]\n          \
         [--system baseline|pref|xmem] [--bw GBPS] [--tlb] [--json]\n  \
         xmemcli placement <name> [--system baseline|xmem|ideal] [--accesses N] [--json]\n  \
         xmemcli record <kernel> --out FILE [--n N] [--tile BYTES] [--steps K]\n  \
         xmemcli replay <FILE> [--l3 BYTES] [--system ...] [--tlb] [--json]\n  \
         xmemcli list"
    );
    exit(2)
}

/// Parses "64K", "2M", or plain bytes.
fn parse_bytes(s: &str) -> Option<u64> {
    let s = s.trim();
    let (num, mult) = match s.chars().last()? {
        'k' | 'K' => (&s[..s.len() - 1], 1u64 << 10),
        'm' | 'M' => (&s[..s.len() - 1], 1u64 << 20),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

#[derive(Debug)]
struct Flags {
    n: usize,
    tile: u64,
    l3: u64,
    steps: usize,
    system: SystemKind,
    uc2: Uc2System,
    bw: Option<f64>,
    tlb: bool,
    accesses: Option<u64>,
    out: Option<String>,
    json: bool,
}

impl Default for Flags {
    fn default() -> Self {
        Flags {
            n: 96,
            tile: 16 << 10,
            l3: 32 << 10,
            steps: 12,
            system: SystemKind::Baseline,
            uc2: Uc2System::Baseline,
            bw: None,
            tlb: false,
            accesses: None,
            out: None,
            json: false,
        }
    }
}

fn parse_flags(args: &[String]) -> Flags {
    let mut f = Flags::default();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--n" => f.n = value(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--tile" => f.tile = parse_bytes(&value(args, &mut i)).unwrap_or_else(|| usage()),
            "--l3" => f.l3 = parse_bytes(&value(args, &mut i)).unwrap_or_else(|| usage()),
            "--steps" => f.steps = value(args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--bw" => f.bw = Some(value(args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--accesses" => {
                f.accesses = Some(value(args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--out" => f.out = Some(value(args, &mut i)),
            "--tlb" => f.tlb = true,
            "--json" => f.json = true,
            "--system" => match value(args, &mut i).as_str() {
                "baseline" => {
                    f.system = SystemKind::Baseline;
                    f.uc2 = Uc2System::Baseline;
                }
                "pref" => f.system = SystemKind::XmemPref,
                "xmem" => {
                    f.system = SystemKind::Xmem;
                    f.uc2 = Uc2System::Xmem;
                }
                "ideal" => f.uc2 = Uc2System::IdealRbl,
                _ => usage(),
            },
            _ => usage(),
        }
        i += 1;
    }
    f
}

fn kernel_by_name(name: &str) -> PolybenchKernel {
    PolybenchKernel::extended()
        .into_iter()
        .find(|k| k.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown kernel '{name}'; see `xmemcli list`");
            exit(2)
        })
}

fn print_report(r: &RunReport) {
    println!("cycles:           {}", r.cycles());
    println!("instructions:     {}", r.core.instructions);
    println!("ipc:              {:.3}", r.core.ipc());
    println!("avg load latency: {:.1} cyc", r.core.avg_load_latency());
    println!(
        "L1/L2/L3 hit:     {:.1}% / {:.1}% / {:.1}%",
        r.l1.hit_rate() * 100.0,
        r.l2.hit_rate() * 100.0,
        r.l3.hit_rate() * 100.0
    );
    println!(
        "DRAM:             {} reads ({} demand), {} writes, row-hit {:.1}%",
        r.dram.reads,
        r.dram.demand_reads,
        r.dram.writes,
        r.dram.row_hit_rate() * 100.0
    );
    println!(
        "demand read lat:  avg {:.0}, p50 {}, p99 {} cyc",
        r.dram.avg_demand_read_latency(),
        r.dram.demand_read_hist.percentile(0.5),
        r.dram.demand_read_hist.percentile(0.99)
    );
    println!(
        "XMem:             {} instructions ({:.4}% overhead), ALB {:.1}% of {} lookups",
        r.xmem_instructions,
        r.instruction_overhead * 100.0,
        r.alb.hit_rate() * 100.0,
        r.alb.lookups()
    );
}

/// Prints either the human-readable report or, with `--json`, the full
/// structured record (config + stats + derived metrics).
fn emit(f: &Flags, record: &RunRecord) {
    if f.json {
        let mut sink = JsonSink::new();
        sink.emit(record);
        println!("{}", sink.render());
    } else {
        print_report(&record.report);
    }
}

fn sys_config(f: &Flags) -> SystemConfig {
    let mut cfg = SystemConfig::scaled_use_case1(f.l3, f.system);
    if let Some(bw) = f.bw {
        cfg = cfg.with_per_core_bandwidth(bw);
    }
    if f.tlb {
        cfg = cfg.with_tlb();
    }
    cfg
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    match cmd.as_str() {
        "list" => {
            println!("kernels:");
            for k in PolybenchKernel::extended() {
                println!("  {}", k.name());
            }
            println!("placement workloads:");
            for w in PlacementWorkload::all() {
                println!("  {}", w.name);
            }
        }
        "kernel" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let kernel = kernel_by_name(name);
            let p = KernelParams {
                n: f.n,
                tile_bytes: f.tile,
                steps: f.steps,
                reuse: 200,
            };
            let cfg = sys_config(&f);
            if !f.json {
                println!(
                    "# {} n={} tile={} l3={} system={}\n",
                    name, f.n, f.tile, f.l3, f.system
                );
            }
            let spec = RunSpec::new(
                format!("{name}/{}", f.system),
                cfg,
                WorkloadSpec::kernel(kernel, p),
            );
            let records = Sweep::new(vec![spec]).run();
            emit(&f, &records[0]);
        }
        "placement" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let mut w = PlacementWorkload::by_name(name).unwrap_or_else(|| {
                eprintln!("unknown workload '{name}'; see `xmemcli list`");
                exit(2)
            });
            if let Some(a) = f.accesses {
                w.accesses = a;
            }
            if !f.json {
                println!("# {} system={}\n", name, f.uc2);
            }
            let Some(best) = Sweep::new(placement_specs(&w, f.uc2)).best() else {
                eprintln!("placement sweep produced no completed records");
                exit(1)
            };
            emit(&f, &best);
        }
        "record" => {
            let name = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let Some(out) = f.out.clone() else { usage() };
            let kernel = kernel_by_name(name);
            let p = KernelParams {
                n: f.n,
                tile_bytes: f.tile,
                steps: f.steps,
                reuse: 200,
            };
            let mut log = LogSink::new();
            kernel.generate(&p, &mut log);
            let events = log.into_events();
            let file = File::create(&out).unwrap_or_else(|e| {
                eprintln!("cannot create {out}: {e}");
                exit(1)
            });
            write_trace(&events, file).unwrap_or_else(|e| {
                eprintln!("write failed: {e}");
                exit(1)
            });
            println!("recorded {} events to {out}", events.len());
        }
        "replay" => {
            let path = args.get(1).unwrap_or_else(|| usage());
            let f = parse_flags(&args[2..]);
            let file = File::open(path).unwrap_or_else(|e| {
                eprintln!("cannot open {path}: {e}");
                exit(1)
            });
            let events = read_trace(file).unwrap_or_else(|e| {
                eprintln!("bad trace: {e}");
                exit(1)
            });
            let cfg = sys_config(&f);
            if !f.json {
                println!(
                    "# replay {path} ({} events) l3={} system={}\n",
                    events.len(),
                    f.l3,
                    f.system
                );
            }
            let report = run_workload(&cfg, |s| replay(&events, s));
            let record = RunRecord {
                label: format!("replay/{}", f.system),
                config: cfg,
                workload: "replay",
                // A raw trace has no stored parameterization.
                workload_params: JsonValue::Null,
                report,
                run: None,
            };
            emit(&f, &record);
        }
        _ => usage(),
    }
}
