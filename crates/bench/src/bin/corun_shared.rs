//! Shared-data co-runs on the MESI-coherent multicore.
//!
//! Four scenarios exercise the snooping bus (see `workloads::shared`):
//!
//! * **pc** — producer/consumer over a 16KB shared buffer (migratory
//!   lines: M ping-pongs between the two private domains);
//! * **readers** — two readers on a read-only 24KB shared table plus a
//!   streaming hog (lines settle in S everywhere, no invalidations);
//! * **lock** — two cores hammering one contended counter line (the
//!   BusRdX/BusUpgr worst case);
//! * **mixed** — producer + consumer + table reader + hog on one L3: the
//!   placement-policy scenario, where coherence-aware pinning exempts the
//!   migratory buffer so the read-mostly table wins the pin budget.
//!
//! Each scenario runs under three machines: `none` (incoherent memory
//! path, the pre-MESI model), `mesi` (snooping bus, coherence-aware
//! pinning) and `mesi-naive` (snooping bus, reuse-only pinning). The
//! closing line quantifies the aware-vs-naive placement delta on the
//! mixed scenario's table reader.
//!
//! An `xmem-report-v1` document with per-core and bus-traffic statistics
//! lands in `target/xmem-reports/corun_shared.json` (`--report-dir=DIR`
//! redirects, `--no-report` suppresses).
//!
//! ```text
//! cargo run --release -p xmem-bench --bin corun_shared [--quick]
//! ```

use std::path::PathBuf;
use workloads::hog::stream_hog;
use workloads::shared::{lock_counter, producer_consumer, read_mostly_reader, PcRole};
use workloads::sink::{LogSink, TraceEvent, TraceSink};
use xmem_bench::{print_table, quick_mode};
use xmem_core::attrs::Reuse;
use xmem_sim::harness::{default_workers, run_jobs, Progress};
use xmem_sim::{
    run_corun, CoherenceMode, CorunReport, JsonValue, MultiCoreConfig, SystemKind, JSON_SCHEMA,
};

fn record(f: impl FnOnce(&mut dyn TraceSink)) -> Vec<TraceEvent> {
    let mut log = LogSink::new();
    f(&mut log);
    log.into_events()
}

struct Scenario {
    name: &'static str,
    /// Core whose cycles headline the table (the latency-sensitive party).
    subject: usize,
    logs: Vec<Vec<TraceEvent>>,
}

fn scenarios(quick: bool) -> Vec<Scenario> {
    // The pc pair's passes are sized so the consumer's dependent sweep
    // spans the table reader's whole run in the mixed scenario — the
    // pin-budget contest only exists while both shared atoms are active.
    let (passes, lookups, rounds, hog_accesses) = if quick {
        (120, 4_000, 1_500, 6_000)
    } else {
        (600, 20_000, 8_000, 40_000)
    };
    // Sizes stage the pin-budget contest on a 32KB L3 (24KB pin budget,
    // 16KB private L2): naive reuse-greedy pinning takes the 16KB buffer
    // (reuse 230) and then cannot fit the 24KB table (reuse 200); aware
    // pinning exempts the migratory buffer, so the table — too big for L2,
    // exactly the pin budget — stays L3-resident for the reader.
    let buffer = 16 << 10;
    let table = 24 << 10;
    let producer = record(|s| {
        producer_consumer(s, PcRole::Producer, buffer, passes, 2, Reuse(230));
    });
    let consumer = record(|s| {
        producer_consumer(s, PcRole::Consumer, buffer, passes, 2, Reuse(230));
    });
    let reader = |core: u64| {
        record(|s| {
            read_mostly_reader(s, core, table, lookups, 2, Reuse(200));
        })
    };
    let lock = record(|s| lock_counter(s, rounds, 6));
    let hog = record(|s| stream_hog(s, 64 << 10, hog_accesses, 8));
    vec![
        Scenario {
            name: "pc",
            subject: 1,
            logs: vec![producer.clone(), consumer.clone()],
        },
        Scenario {
            name: "readers",
            subject: 0,
            logs: vec![reader(0), reader(1), hog.clone()],
        },
        Scenario {
            name: "lock",
            subject: 0,
            logs: vec![lock.clone(), lock],
        },
        Scenario {
            name: "mixed",
            subject: 2,
            logs: vec![producer, consumer, reader(2), hog],
        },
    ]
}

const VARIANTS: [(&str, CoherenceMode, bool); 3] = [
    ("none", CoherenceMode::None, true),
    ("mesi", CoherenceMode::Mesi, true),
    ("mesi-naive", CoherenceMode::Mesi, false),
];

fn config(cores: usize, l3: u64, mode: CoherenceMode, aware: bool) -> MultiCoreConfig {
    let mut cfg = MultiCoreConfig::scaled_corun(cores, l3, SystemKind::Xmem).with_coherence(mode);
    cfg.coherence_aware_pinning = aware;
    cfg
}

fn record_json(
    scenario: &Scenario,
    variant: &(&str, CoherenceMode, bool),
    r: &CorunReport,
) -> JsonValue {
    let (vname, mode, aware) = *variant;
    JsonValue::object([
        (
            "label",
            JsonValue::Str(format!("{}/{vname}", scenario.name)),
        ),
        (
            "config",
            JsonValue::object([
                ("cores", JsonValue::U64(scenario.logs.len() as u64)),
                ("l3_bytes", JsonValue::U64(32 << 10)),
                ("coherence", JsonValue::Str(mode.to_string())),
                ("coherence_aware_pinning", JsonValue::Bool(aware)),
            ]),
        ),
        (
            "cores",
            JsonValue::Array(r.cores.iter().map(|c| JsonValue::from_kv(c.kv())).collect()),
        ),
        (
            "l1s",
            JsonValue::Array(r.l1s.iter().map(|c| JsonValue::from_kv(c.kv())).collect()),
        ),
        (
            "l2s",
            JsonValue::Array(r.l2s.iter().map(|c| JsonValue::from_kv(c.kv())).collect()),
        ),
        ("l3", JsonValue::from_kv(r.l3.kv())),
        ("dram", JsonValue::from_kv(r.dram.kv())),
        ("bus", JsonValue::from_kv(r.bus.kv())),
        (
            "extras",
            JsonValue::object([
                ("subject_core", JsonValue::U64(scenario.subject as u64)),
                ("subject_cycles", JsonValue::U64(r.cycles(scenario.subject))),
            ]),
        ),
    ])
}

fn main() {
    let quick = quick_mode();
    let mut report_dir = Some(PathBuf::from("target/xmem-reports"));
    for arg in std::env::args() {
        if arg == "--no-report" {
            report_dir = None;
        } else if let Some(d) = arg.strip_prefix("--report-dir=") {
            report_dir = Some(PathBuf::from(d));
        }
    }
    let l3 = 32 << 10;
    let scens = scenarios(quick);
    println!(
        "# Shared-data co-runs on a {}KB L3 (MESI snooping bus)",
        l3 >> 10
    );
    println!("# subject = the latency-sensitive core of each scenario\n");

    // Scenario-major jobs: (none, mesi, mesi-naive) per scenario.
    let jobs: Vec<(MultiCoreConfig, usize, usize)> = scens
        .iter()
        .enumerate()
        .flat_map(|(si, sc)| {
            VARIANTS
                .iter()
                .enumerate()
                .map(move |(vi, &(_, mode, aware))| {
                    (config(sc.logs.len(), l3, mode, aware), si, vi)
                })
        })
        .collect();
    let progress = Progress::new("corun_shared", jobs.len());
    let reports = run_jobs(jobs.len(), default_workers(), |i| {
        let (cfg, si, _) = &jobs[i];
        let r = run_corun(cfg, &scens[*si].logs);
        progress.tick(false);
        r
    });
    progress.finish();

    let headers: Vec<String> = [
        "scenario",
        "machine",
        "subject cyc",
        "bus tx",
        "c2c",
        "inval",
        "wb",
        "stall",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for (job, r) in jobs.iter().zip(&reports) {
        let (_, si, vi) = job;
        let (sc, variant) = (&scens[*si], &VARIANTS[*vi]);
        let b = &r.bus;
        rows.push(vec![
            sc.name.to_string(),
            variant.0.to_string(),
            r.cycles(sc.subject).to_string(),
            b.transactions().to_string(),
            b.c2c_transfers.to_string(),
            b.invalidations.to_string(),
            b.writebacks.to_string(),
            b.stall_cycles.to_string(),
        ]);
        records.push(record_json(sc, variant, r));
    }
    print_table(&headers, &rows);

    // The placement delta: on the mixed scenario, aware pinning gives the
    // read-mostly table the budget the migratory buffer would waste.
    let mixed = scens.len() - 1;
    let subject = scens[mixed].subject;
    let aware = reports[mixed * VARIANTS.len() + 1].cycles(subject);
    let naive = reports[mixed * VARIANTS.len() + 2].cycles(subject);
    println!(
        "\nmixed/table reader: aware {aware} cyc vs naive {naive} cyc — {:+.1}% from \
         exempting the migratory buffer",
        (naive as f64 / aware as f64 - 1.0) * 100.0
    );

    if let Some(dir) = report_dir {
        let doc = JsonValue::object([
            ("schema", JsonValue::Str(JSON_SCHEMA.to_string())),
            ("bin", JsonValue::Str("corun_shared".to_string())),
            ("records", JsonValue::Array(records)),
        ])
        .render();
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("corun_shared: cannot create {}: {e}", dir.display());
            std::process::exit(1);
        }
        let path = dir.join("corun_shared.json");
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("corun_shared: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("report: {}", path.display());
    }
}
