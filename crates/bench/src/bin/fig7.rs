//! Figures 7 and 8: XMem-guided DRAM placement on 27 memory-intensive
//! workloads (§6.4).
//!
//! Three systems per workload:
//! * **Baseline** — strengthened per §6.3: best of nine address mappings,
//!   randomized VA→PA, prefetcher only if it helps;
//! * **XMem** — the §6.2 placement algorithm (isolate high-RBL structures,
//!   spread the rest);
//! * **Ideal** — perfect row-buffer locality (upper bound).
//!
//! Every system's §6.3 configuration grid (18 points for the Baseline, 2
//! each for XMem/Ideal) for every workload is flattened into **one**
//! parallel sweep — 27 × 22 = 594 simulations — and the per-system best is
//! selected from the order-stable records, reproducing the old serial
//! `best_of` exactly.
//!
//! Paper results reproduced here: XMem +8.5% avg (up to +31.9%) with a
//! 24.4% Ideal headroom; 5 workloads flat (little headroom or random-
//! dominated); read latency −12.6% avg (Fig 8), writes −6.2%.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin fig7 [--quick] [--csv]
//! ```

use workloads::placement::PlacementWorkload;
use xmem_bench::reports::{require_complete, ReportWriter};
use xmem_bench::{geomean, print_table, quick_mode};
use xmem_sim::{placement_specs, RunRecord, Sweep, Uc2System};

const SYSTEMS: [Uc2System; 3] = [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl];

fn main() {
    let quick = quick_mode();
    println!("# Figure 7: speedup over strengthened Baseline (27 workloads)");
    println!("# Figure 8: memory read latency normalized to Baseline\n");

    // Flatten every (workload, system) grid into one sweep, remembering
    // each grid's extent so the best point can be picked per grid.
    let mut workloads = PlacementWorkload::all();
    if quick {
        for w in &mut workloads {
            w.accesses = 40_000;
        }
    }
    let mut specs = Vec::new();
    let mut grids = Vec::new(); // (workload idx, system, start, len)
    for (wi, w) in workloads.iter().enumerate() {
        for sys in SYSTEMS {
            let grid = placement_specs(w, sys);
            grids.push((wi, sys, specs.len(), grid.len()));
            specs.extend(grid);
        }
    }
    let mut writer = ReportWriter::new("fig7");
    let outcomes = writer.sweep(Sweep::new(specs)).run_outcomes();
    let records = require_complete(&mut writer, outcomes);

    // Ties break by grid order, matching a serial min_by_key.
    let best = |wi: usize, sys: Uc2System| -> &RunRecord {
        let &(_, _, start, len) = grids
            .iter()
            .find(|&&(i, s, _, _)| i == wi && s == sys)
            .expect("grid exists");
        records[start..start + len]
            .iter()
            .min_by_key(|r| r.report.cycles())
            .expect("non-empty grid")
    };

    let headers: Vec<String> = [
        "workload",
        "XMem speedup",
        "Ideal speedup",
        "XMem read lat",
        "XMem write lat",
        "base row-hit",
        "xmem row-hit",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    let mut xmem_speedups = Vec::new();
    let mut ideal_speedups = Vec::new();
    let mut read_lats = Vec::new();
    let mut write_lats = Vec::new();
    let mut best_xmem: (f64, &'static str) = (0.0, "");
    let mut flat = 0u32;

    for (wi, w) in workloads.iter().enumerate() {
        let base = best(wi, Uc2System::Baseline);
        let xmem = best(wi, Uc2System::Xmem);
        let ideal = best(wi, Uc2System::IdealRbl);

        let s_xmem = xmem.report.speedup_over(&base.report);
        let s_ideal = ideal.report.speedup_over(&base.report);
        let r_lat = xmem.report.normalized_read_latency(&base.report);
        let r_lat_ideal = ideal.report.normalized_read_latency(&base.report);
        let w_lat = {
            let b = base.report.dram.avg_write_latency();
            if b == 0.0 {
                1.0
            } else {
                xmem.report.dram.avg_write_latency() / b
            }
        };
        // Every record must carry the same extras or CSV emission would
        // see ragged column sets; baseline normalizes to itself (1.0).
        writer.emit_with(
            base,
            &[
                ("speedup", 1.0.into()),
                ("normalized_read_latency", 1.0.into()),
            ],
        );
        writer.emit_with(
            xmem,
            &[
                ("speedup", s_xmem.into()),
                ("normalized_read_latency", r_lat.into()),
            ],
        );
        writer.emit_with(
            ideal,
            &[
                ("speedup", s_ideal.into()),
                ("normalized_read_latency", r_lat_ideal.into()),
            ],
        );

        xmem_speedups.push(s_xmem);
        ideal_speedups.push(s_ideal);
        read_lats.push(r_lat);
        write_lats.push(w_lat);
        if s_xmem > best_xmem.0 {
            best_xmem = (s_xmem, w.name);
        }
        if s_xmem < 1.03 {
            flat += 1;
        }

        rows.push(vec![
            w.name.to_string(),
            format!("{s_xmem:.3}"),
            format!("{s_ideal:.3}"),
            format!("{r_lat:.3}"),
            format!("{w_lat:.3}"),
            format!("{:.3}", base.report.dram.row_hit_rate()),
            format!("{:.3}", xmem.report.dram.row_hit_rate()),
        ]);
    }
    print_table(&headers, &rows);

    println!();
    println!(
        "XMem speedup:  avg {:+.1}%, max {:+.1}% ({})   [paper: +8.5% avg, up to +31.9%]",
        (geomean(&xmem_speedups) - 1.0) * 100.0,
        (best_xmem.0 - 1.0) * 100.0,
        best_xmem.1
    );
    println!(
        "Ideal speedup: avg {:+.1}%   [paper: +24.4%]",
        (geomean(&ideal_speedups) - 1.0) * 100.0
    );
    println!("workloads with <3% gain: {flat}   [paper: 5]");
    println!(
        "read latency:  avg {:+.1}%, best {:+.1}%   [paper: -12.6% avg, up to -31.4%]",
        (geomean(&read_lats) - 1.0) * 100.0,
        (read_lats.iter().cloned().fold(f64::MAX, f64::min) - 1.0) * 100.0
    );
    println!(
        "write latency: avg {:+.1}%   [paper: -6.2%]",
        (geomean(&write_lats) - 1.0) * 100.0
    );
    writer.finish();
}
