//! Figure 5: performance portability under shrinking cache space (§5.4).
//!
//! For each kernel, the tile size is tuned for the large L3 (the paper's
//! 2 MB analogue), then the *same binary* runs with that L3, half of it, and
//! a quarter of it. The figure reports the worst execution time across the
//! three cache sizes, normalized to the Baseline on the large cache.
//!
//! Paper result: worst-case slowdown 55% for the Baseline vs. 6% for XMem.
//!
//! ```text
//! cargo run --release -p xmem-bench --bin fig5 [--quick] [--csv]
//! ```

use workloads::polybench::PolybenchKernel;
use xmem_bench::reports::{require_complete, ReportWriter};
use xmem_bench::{
    fig4_tiles, fmt_bytes, geomean, print_table, quick_mode, uc1_params, FIG5_L3, UC1_N,
};
use xmem_sim::{KernelRun, RunSpec, Sweep, SystemKind};

fn main() {
    let n = if quick_mode() { 48 } else { UC1_N };
    let l3_full = FIG5_L3;
    let cache_sizes = [l3_full, l3_full / 2, l3_full / 4];
    println!(
        "# Figure 5: max execution time across L3 = {{{}, {}, {}}}, tile tuned for {}",
        fmt_bytes(cache_sizes[0]),
        fmt_bytes(cache_sizes[1]),
        fmt_bytes(cache_sizes[2]),
        fmt_bytes(l3_full),
    );
    println!("# Normalized to Baseline at the tuned cache size.\n");

    // Tune per the sizing heuristic the paper describes (§5.4: "many
    // optimizations typically size the tile to be as big as what can
    // fit in the available cache space" [65, 78]): the largest sweep
    // tile that fits the full cache.
    let tuned_tile = fig4_tiles()
        .into_iter()
        .filter(|&t| t <= l3_full)
        .max()
        .expect("non-empty sweep");
    let systems = [SystemKind::Baseline, SystemKind::Xmem];

    // One spec per (kernel, system, cache size), kernel-major; within a
    // kernel the first record is the Baseline-at-full-cache reference.
    let kernels = PolybenchKernel::all();
    let specs: Vec<RunSpec> = kernels
        .iter()
        .flat_map(|&kernel| {
            systems.iter().flat_map(move |&kind| {
                cache_sizes.into_iter().map(move |l3| {
                    let mut spec = KernelRun::new(kernel, uc1_params(n, tuned_tile))
                        .l3_bytes(l3)
                        .system(kind)
                        .spec();
                    spec.label = format!("{}/{kind}/L3={}", kernel.name(), fmt_bytes(l3));
                    spec
                })
            })
        })
        .collect();
    let mut writer = ReportWriter::new("fig5");
    let outcomes = writer.sweep(Sweep::new(specs)).run_outcomes();
    let records = require_complete(&mut writer, outcomes);

    let headers: Vec<String> = ["kernel", "tuned tile", "Baseline max", "XMem max"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut rows = Vec::new();
    let mut base_max = Vec::new();
    let mut xmem_max = Vec::new();

    let per_kernel = systems.len() * cache_sizes.len();
    for (ki, kernel) in kernels.iter().enumerate() {
        let chunk = &records[ki * per_kernel..(ki + 1) * per_kernel];
        let reference = chunk[0].report.cycles() as f64;
        for r in chunk {
            writer.emit_with(
                r,
                &[(
                    "normalized_time",
                    (r.report.cycles() as f64 / reference).into(),
                )],
            );
        }
        let worst = |recs: &[xmem_sim::RunRecord]| -> f64 {
            recs.iter()
                .map(|r| r.report.cycles() as f64 / reference)
                .fold(0.0f64, f64::max)
        };
        let b = worst(&chunk[..cache_sizes.len()]);
        let x = worst(&chunk[cache_sizes.len()..]);
        base_max.push(b);
        xmem_max.push(x);
        rows.push(vec![
            kernel.name().to_string(),
            fmt_bytes(tuned_tile),
            format!("{b:.2}"),
            format!("{x:.2}"),
        ]);
    }
    print_table(&headers, &rows);

    println!();
    println!(
        "worst-case slowdown with less cache: Baseline {:+.0}%  [paper: +55%]",
        (geomean(&base_max) - 1.0) * 100.0
    );
    println!(
        "worst-case slowdown with less cache: XMem     {:+.0}%  [paper: +6%]",
        (geomean(&xmem_max) - 1.0) * 100.0
    );
    writer.finish();
}
