//! # xmem-bench — the harness that regenerates the paper's figures
//!
//! One binary per figure/table (run with `cargo run --release -p xmem-bench
//! --bin <name>`):
//!
//! | Binary | Reproduces | Paper reference |
//! |---|---|---|
//! | `fig4` | Execution time vs. tile size, Baseline vs. XMem, 12 kernels | Fig 4, §5.4 |
//! | `fig5` | Performance portability across cache sizes | Fig 5, §5.4 |
//! | `fig6` | XMem vs. XMem-Pref across memory bandwidths | Fig 6, §5.4 |
//! | `fig7` | DRAM placement speedup, 27 workloads (+ Fig 8 latencies) | Fig 7–8, §6.4 |
//! | `overheads` | Storage / instruction / ALB / context-switch overheads | §4.2, §4.4 |
//!
//! Criterion microbenches for the substrates and ablations live under
//! `benches/`. All parameters here are the *scaled* configuration described
//! in DESIGN.md; `--quick` shrinks problem sizes further for smoke runs.

#![warn(missing_docs)]

use workloads::polybench::KernelParams;

/// The scaled L3 capacity used for the Fig 4 / Fig 6 experiments (the
/// paper's 8 MB scaled alongside the rest of the hierarchy).
pub const UC1_L3: u64 = 32 << 10;

/// The L3 the Fig 5 binaries are "tuned" for (the paper's 2 MB analogue);
/// portability is tested on this, half, and a quarter of it.
pub const FIG5_L3: u64 = 64 << 10;

/// Problem size for use-case-1 kernels (matrices of `n²` doubles).
pub const UC1_N: usize = 96;

/// Stencil time steps for use-case-1 kernels.
pub const UC1_STEPS: usize = 12;

/// Default kernel parameters at a given tile size.
pub fn uc1_params(n: usize, tile_bytes: u64) -> KernelParams {
    KernelParams {
        n,
        tile_bytes,
        steps: UC1_STEPS,
        reuse: 200,
    }
}

/// The tile-size sweep of Fig 4 (64 B up to ~4× the scaled L3, the analogue
/// of the paper's 64 B – 8 MB range).
pub fn fig4_tiles() -> Vec<u64> {
    vec![
        64,
        256,
        1 << 10,
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
    ]
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a Markdown-ish table: header row, separator, then data rows.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, cell) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!(" {:>w$} |", cell, w = widths[i]));
        }
        s
    };
    println!("{}", fmt_row(headers));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a byte count compactly (64B, 4KB, 2MB).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 && b % (1 << 20) == 0 {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 && b % (1 << 10) == 0 {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Returns `true` if `--quick` was passed (smaller problem sizes).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tiles_are_sorted_and_bracket_l3() {
        let tiles = fig4_tiles();
        assert!(tiles.windows(2).all(|w| w[0] < w[1]));
        assert!(*tiles.first().unwrap() < UC1_L3);
        assert!(*tiles.last().unwrap() > UC1_L3);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(4096), "4KB");
        assert_eq!(fmt_bytes(2 << 20), "2MB");
    }
}
