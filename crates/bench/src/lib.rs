//! # xmem-bench — the harness that regenerates the paper's figures
//!
//! One binary per figure/table (run with `cargo run --release -p xmem-bench
//! --bin <name>`):
//!
//! | Binary | Reproduces | Paper reference |
//! |---|---|---|
//! | `fig4` | Execution time vs. tile size, Baseline vs. XMem, 12 kernels | Fig 4, §5.4 |
//! | `fig5` | Performance portability across cache sizes | Fig 5, §5.4 |
//! | `fig6` | XMem vs. XMem-Pref across memory bandwidths | Fig 6, §5.4 |
//! | `fig7` | DRAM placement speedup, 27 workloads (+ Fig 8 latencies) | Fig 7–8, §6.4 |
//! | `overheads` | Storage / instruction / ALB / context-switch overheads | §4.2, §4.4 |
//!
//! Criterion microbenches for the substrates and ablations live under
//! `benches/`. All parameters here are the *scaled* configuration described
//! in DESIGN.md; `--quick` shrinks problem sizes further for smoke runs.

#![warn(missing_docs)]

use workloads::polybench::KernelParams;

/// The scaled L3 capacity used for the Fig 4 / Fig 6 experiments (the
/// paper's 8 MB scaled alongside the rest of the hierarchy).
pub const UC1_L3: u64 = 32 << 10;

/// The L3 the Fig 5 binaries are "tuned" for (the paper's 2 MB analogue);
/// portability is tested on this, half, and a quarter of it.
pub const FIG5_L3: u64 = 64 << 10;

/// Problem size for use-case-1 kernels (matrices of `n²` doubles).
pub const UC1_N: usize = 96;

/// Stencil time steps for use-case-1 kernels.
pub const UC1_STEPS: usize = 12;

/// Default kernel parameters at a given tile size.
pub fn uc1_params(n: usize, tile_bytes: u64) -> KernelParams {
    KernelParams {
        n,
        tile_bytes,
        steps: UC1_STEPS,
        reuse: 200,
    }
}

/// The tile-size sweep of Fig 4 (64 B up to ~4× the scaled L3, the analogue
/// of the paper's 64 B – 8 MB range).
pub fn fig4_tiles() -> Vec<u64> {
    vec![
        64,
        256,
        1 << 10,
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
    ]
}

/// Geometric mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs.iter().map(|x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean of a non-empty slice.
///
/// # Panics
///
/// Panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Prints a Markdown-ish table: header row, separator, then data rows.
pub fn print_table(headers: &[String], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, cell) in cells.iter().enumerate().take(cols) {
            s.push_str(&format!(" {:>w$} |", cell, w = widths[i]));
        }
        s
    };
    println!("{}", fmt_row(headers));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a byte count compactly (64B, 4KB, 2MB).
pub fn fmt_bytes(b: u64) -> String {
    if b >= 1 << 20 && b.is_multiple_of(1 << 20) {
        format!("{}MB", b >> 20)
    } else if b >= 1 << 10 && b.is_multiple_of(1 << 10) {
        format!("{}KB", b >> 10)
    } else {
        format!("{b}B")
    }
}

/// Returns `true` if `--quick` was passed (smaller problem sizes).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

pub mod reports {
    //! Shared structured-report emission for the bench binaries.
    //!
    //! Every figure binary prints its human-readable table to stdout and,
    //! through a [`ReportWriter`], also serializes the underlying
    //! [`RunRecord`]s with the shared sinks:
    //!
    //! * JSON (`xmem-report-v1`) is always written, to
    //!   `target/xmem-reports/<bin>.json` by default;
    //! * `--csv` additionally writes the flat CSV table next to it;
    //! * `--report-dir=DIR` redirects both — and, being an explicit
    //!   durable location, turns on per-point streaming and resume: each
    //!   finished point lands in `DIR/<bin>.points/` as it completes, and
    //!   a re-run reloads finished labels instead of re-simulating them;
    //! * `--no-report` suppresses file output entirely;
    //! * `--epoch[=N]` samples a cross-layer telemetry series every `N`
    //!   retired instructions (default 100 000) into each record's
    //!   `telemetry` block;
    //! * `--sample[=W:D:I]` runs every point in statistical-sampling mode:
    //!   each interval of `I` ops fast-forwards, warms caches/TLB/DRAM for
    //!   `W` ops, then simulates a `D`-op detailed window; measured window
    //!   metrics land in each record's `sampling` block with 95% confidence
    //!   intervals. Bare `--sample` uses the tuned default spec;
    //! * `--trace-out[=PATH]` additionally writes the series as a Chrome
    //!   trace-format JSON (openable in `chrome://tracing` / Perfetto),
    //!   implying `--epoch` when it was not given. The default path is
    //!   `<report dir>/<bin>.trace.json`.

    use cpu_sim::kv::KvValue;
    use std::path::PathBuf;
    use xmem_sim::report_sink::write_report;
    use xmem_sim::{
        ChromeTrace, CsvSink, JsonSink, ReportSink, RunFailure, RunOutcome, RunRecord,
        SamplingSpec, Sweep, DEFAULT_EPOCH_INSTRUCTIONS,
    };

    /// Collects records during a run and writes the report files at the
    /// end.
    #[derive(Debug)]
    pub struct ReportWriter {
        name: String,
        dir: Option<PathBuf>,
        explicit_dir: bool,
        json: JsonSink,
        csv: Option<CsvSink>,
        epoch: Option<u64>,
        sampling: Option<SamplingSpec>,
        trace_out: Option<PathBuf>,
        trace: ChromeTrace,
    }

    impl ReportWriter {
        /// A writer for the binary `name`, configured from `std::env::args`
        /// (see the module docs for the flags).
        pub fn new(name: &str) -> Self {
            let mut dir = Some(PathBuf::from("target/xmem-reports"));
            let mut explicit_dir = false;
            let mut csv = None;
            let mut epoch = None;
            let mut sampling = None;
            let mut trace_requested = false;
            let mut trace_path = None;
            for arg in std::env::args() {
                if arg == "--no-report" {
                    dir = None;
                    explicit_dir = false;
                } else if let Some(d) = arg.strip_prefix("--report-dir=") {
                    dir = Some(PathBuf::from(d));
                    explicit_dir = true;
                } else if arg == "--csv" {
                    csv = Some(CsvSink::new());
                } else if arg == "--epoch" {
                    epoch = Some(DEFAULT_EPOCH_INSTRUCTIONS);
                } else if let Some(n) = arg.strip_prefix("--epoch=") {
                    match n.parse::<u64>() {
                        Ok(n) if n > 0 => epoch = Some(n),
                        _ => {
                            eprintln!("--epoch wants a positive instruction count, got '{n}'");
                            std::process::exit(2);
                        }
                    }
                } else if arg == "--sample" {
                    sampling = Some(SamplingSpec::DEFAULT);
                } else if let Some(spec) = arg.strip_prefix("--sample=") {
                    match SamplingSpec::parse(spec) {
                        Ok(s) => sampling = Some(s),
                        Err(e) => {
                            eprintln!("--sample wants WARMUP:WINDOW:INTERVAL: {e}");
                            std::process::exit(2);
                        }
                    }
                } else if arg == "--trace-out" {
                    trace_requested = true;
                } else if let Some(p) = arg.strip_prefix("--trace-out=") {
                    trace_requested = true;
                    trace_path = Some(PathBuf::from(p));
                }
            }
            // A trace without sampling would be empty; imply the default
            // epoch so `--trace-out` works on its own.
            if trace_requested && epoch.is_none() {
                epoch = Some(DEFAULT_EPOCH_INSTRUCTIONS);
            }
            let trace_out = trace_requested.then(|| {
                trace_path.unwrap_or_else(|| {
                    dir.clone()
                        .unwrap_or_else(|| PathBuf::from("target/xmem-reports"))
                        .join(format!("{name}.trace.json"))
                })
            });
            ReportWriter {
                name: name.to_string(),
                dir,
                explicit_dir,
                json: JsonSink::new(),
                csv,
                epoch,
                sampling,
                trace_out,
                trace: ChromeTrace::new(),
            }
        }

        /// The telemetry sampling epoch requested on the command line
        /// (`None` when sampling is off).
        pub fn epoch(&self) -> Option<u64> {
            self.epoch
        }

        /// The sampling spec requested on the command line (`None` when
        /// every point runs fully detailed).
        pub fn sampling(&self) -> Option<SamplingSpec> {
            self.sampling
        }

        /// The per-point streaming directory (`DIR/<bin>.points`), active
        /// only under an explicit `--report-dir`: an explicit directory is
        /// durable sweep state worth resuming from, the default
        /// `target/xmem-reports` is not (stale points from an earlier
        /// differently-sized run would linger there unnoticed).
        pub fn points_dir(&self) -> Option<PathBuf> {
            if !self.explicit_dir {
                return None;
            }
            self.dir
                .as_ref()
                .map(|d| d.join(format!("{}.points", self.name)))
        }

        /// Wires a sweep to this writer: a progress line on stderr and,
        /// under an explicit `--report-dir`, per-point streaming plus
        /// resume of already-finished labels.
        pub fn sweep(&self, sweep: Sweep) -> Sweep {
            // Epoch and sampling before resume: stored points are only
            // adopted when their telemetry epoch and sampling spec match
            // this run's setup.
            let sweep = sweep
                .progress(&self.name)
                .epoch(self.epoch)
                .sampling(self.sampling);
            match self.points_dir() {
                Some(dir) => sweep.resume_from(dir),
                None => sweep,
            }
        }

        /// Adds one record.
        pub fn emit(&mut self, record: &RunRecord) {
            self.emit_with(record, &[]);
        }

        /// Adds one record with derived extras (speedups etc.).
        ///
        /// A sink rejecting the record (e.g. ragged CSV columns) is a bug
        /// in the figure binary's emit sequence, not a run-time condition:
        /// the typed error is printed with the offending label and the
        /// process exits 2 instead of panicking mid-report.
        pub fn emit_with(&mut self, record: &RunRecord, extras: &[(&'static str, KvValue)]) {
            if let Err(e) = self.json.emit_with(record, extras) {
                eprintln!("{}: {e}", self.name);
                std::process::exit(2);
            }
            if let Some(csv) = &mut self.csv {
                if let Err(e) = csv.emit_with(record, extras) {
                    eprintln!("{}: {e}", self.name);
                    std::process::exit(2);
                }
            }
            if self.trace_out.is_some() {
                if let Some(series) = &record.telemetry {
                    self.trace
                        .add_series(&record.label, series, record.config.core.freq_ghz);
                }
            }
        }

        /// Writes the report files and prints their paths; `true` when at
        /// least one file was written (`false` under `--no-report`).
        fn write_files(&self) -> bool {
            let mut wrote = false;
            if let Some(dir) = &self.dir {
                let mut sinks: Vec<&dyn ReportSink> = vec![&self.json];
                if let Some(csv) = &self.csv {
                    sinks.push(csv);
                }
                for sink in sinks {
                    let path = dir.join(format!("{}.{}", self.name, sink.extension()));
                    match write_report(&path, sink) {
                        Ok(()) => {
                            println!("\nwrote {}", path.display());
                            wrote = true;
                        }
                        Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
                    }
                }
            }
            // The Chrome trace is written even when empty (still a valid
            // document) and independently of `--no-report`: an explicit
            // `--trace-out=PATH` is its own request.
            if let Some(path) = &self.trace_out {
                let write = || -> std::io::Result<()> {
                    if let Some(parent) = path.parent() {
                        if !parent.as_os_str().is_empty() {
                            std::fs::create_dir_all(parent)?;
                        }
                    }
                    std::fs::write(path, self.trace.render())
                };
                match write() {
                    Ok(()) => {
                        println!("\nwrote {}", path.display());
                        wrote = true;
                    }
                    Err(e) => eprintln!("\nfailed to write {}: {e}", path.display()),
                }
            }
            wrote
        }

        /// Writes the report files and prints their paths.
        pub fn finish(self) {
            self.write_files();
        }
    }

    /// Unwraps sweep outcomes into the records a figure table needs.
    ///
    /// When every point completed, the records come back in spec order.
    /// Otherwise the failures are listed on stderr, the completed records
    /// are *salvaged* — emitted through `writer` (without the per-figure
    /// derived extras) and written out immediately — and the process exits
    /// nonzero. Under an explicit `--report-dir` the completed points have
    /// additionally been streamed as they finished, so a re-run with the
    /// same flags resumes them and repeats only the failed labels.
    pub fn require_complete(
        writer: &mut ReportWriter,
        outcomes: Vec<RunOutcome>,
    ) -> Vec<RunRecord> {
        let total = outcomes.len();
        let mut records = Vec::with_capacity(total);
        let mut failures: Vec<RunFailure> = Vec::new();
        for outcome in outcomes {
            match outcome {
                RunOutcome::Completed(r) | RunOutcome::Resumed(r) => records.push(r),
                RunOutcome::Failed(f) => failures.push(f),
            }
        }
        if !failures.is_empty() {
            eprintln!("{} of {total} points failed:", failures.len());
            for f in &failures {
                eprintln!("  {}: {}", f.label, f.message);
            }
            for r in &records {
                writer.emit(r);
            }
            let salvaged = writer.write_files();
            if let Some(dir) = writer.points_dir() {
                eprintln!(
                    "completed points are streamed in {}; re-running with the same \
                     flags resumes them and repeats only the failed labels",
                    dir.display()
                );
            } else if salvaged {
                eprintln!(
                    "completed records were salvaged to the report files above \
                     (pass --report-dir=DIR for per-point streaming and resume)"
                );
            } else {
                eprintln!(
                    "completed records were discarded (--no-report; pass \
                     --report-dir=DIR to keep and resume them)"
                );
            }
            std::process::exit(1);
        }
        records
    }
}

pub mod microbench {
    //! A minimal wall-clock micro-benchmark timer (std-only; the offline
    //! build cannot depend on criterion).
    //!
    //! Each case is warmed up, then run in growing batches until it has
    //! accumulated enough wall time for a stable per-iteration figure. The
    //! result table reports the *median* of several batch measurements,
    //! which is robust to scheduler noise without statistics machinery.

    use std::hint::black_box;
    use std::time::Instant;

    /// Target accumulated measurement time per case.
    const TARGET_NANOS: u128 = 200_000_000;
    /// Number of batch samples the median is taken over.
    const SAMPLES: usize = 7;

    /// One finished measurement: the median time per iteration and how many
    /// simulated operations each iteration performed (for ops/sec).
    #[derive(Debug, Clone)]
    pub struct BenchRow {
        /// Case name (stable across runs; the perf trajectory keys on it).
        pub name: String,
        /// Median wall-clock nanoseconds per iteration.
        pub median_ns: f64,
        /// Simulated operations per iteration (1 when unspecified).
        pub ops_per_iter: u64,
    }

    impl BenchRow {
        /// Operations per wall-clock second.
        pub fn ops_per_sec(&self) -> f64 {
            if self.median_ns <= 0.0 {
                0.0
            } else {
                self.ops_per_iter as f64 * 1e9 / self.median_ns
            }
        }
    }

    /// Collects timed cases and prints one table at the end.
    #[derive(Debug, Default)]
    pub struct Timer {
        group: String,
        rows: Vec<BenchRow>,
    }

    impl Timer {
        /// A new timer for a named group of cases.
        pub fn new(group: &str) -> Self {
            Timer {
                group: group.to_string(),
                rows: Vec::new(),
            }
        }

        /// Times `f`, recording median ns/iteration under `name`.
        pub fn case<T>(&mut self, name: &str, f: impl FnMut() -> T) {
            self.case_ops(name, 1, f);
        }

        /// Times `f`, recording median ns/iteration under `name`; each
        /// iteration is credited with `ops` simulated operations, so the
        /// row also reports a throughput (ops/sec) figure.
        pub fn case_ops<T>(&mut self, name: &str, ops: u64, mut f: impl FnMut() -> T) {
            // Warm-up and batch-size calibration: grow until one batch
            // takes a measurable slice of the target.
            let mut batch = 1u64;
            loop {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                let elapsed = t.elapsed().as_nanos().max(1);
                if elapsed * (SAMPLES as u128) >= TARGET_NANOS || batch >= 1 << 20 {
                    break;
                }
                batch = batch.saturating_mul(2);
            }
            let mut samples: Vec<f64> = (0..SAMPLES)
                .map(|_| {
                    let t = Instant::now();
                    for _ in 0..batch {
                        black_box(f());
                    }
                    t.elapsed().as_nanos() as f64 / batch as f64
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            self.rows.push(BenchRow {
                name: name.to_string(),
                median_ns: samples[SAMPLES / 2],
                ops_per_iter: ops,
            });
        }

        /// The measurements recorded so far.
        pub fn rows(&self) -> &[BenchRow] {
            &self.rows
        }

        /// Prints the result table for this group.
        pub fn finish(self) -> Vec<BenchRow> {
            println!("\n## {}", self.group);
            let headers = ["case", "median", "ops/sec"]
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>();
            let rows: Vec<Vec<String>> = self
                .rows
                .iter()
                .map(|r| {
                    let rate = if r.ops_per_iter > 1 {
                        fmt_rate(r.ops_per_sec())
                    } else {
                        "-".to_string()
                    };
                    vec![r.name.clone(), fmt_nanos(r.median_ns), rate]
                })
                .collect();
            super::print_table(&headers, &rows);
            self.rows
        }
    }

    /// Formats an ops/sec figure with an adaptive unit (K/M/G ops/s).
    pub fn fmt_rate(ops_per_sec: f64) -> String {
        if ops_per_sec >= 1e9 {
            format!("{:.2} Gop/s", ops_per_sec / 1e9)
        } else if ops_per_sec >= 1e6 {
            format!("{:.2} Mop/s", ops_per_sec / 1e6)
        } else if ops_per_sec >= 1e3 {
            format!("{:.2} Kop/s", ops_per_sec / 1e3)
        } else {
            format!("{ops_per_sec:.1} op/s")
        }
    }

    /// Formats nanoseconds with an adaptive unit (ns / µs / ms).
    pub fn fmt_nanos(ns: f64) -> String {
        if ns < 1_000.0 {
            format!("{ns:.1} ns")
        } else if ns < 1_000_000.0 {
            format!("{:.2} µs", ns / 1_000.0)
        } else {
            format!("{:.3} ms", ns / 1_000_000.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identity() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mean_basic() {
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tiles_are_sorted_and_bracket_l3() {
        let tiles = fig4_tiles();
        assert!(tiles.windows(2).all(|w| w[0] < w[1]));
        assert!(*tiles.first().unwrap() < UC1_L3);
        assert!(*tiles.last().unwrap() > UC1_L3);
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(64), "64B");
        assert_eq!(fmt_bytes(4096), "4KB");
        assert_eq!(fmt_bytes(2 << 20), "2MB");
    }
}
