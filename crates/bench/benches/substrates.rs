//! Substrate microbenches and design-choice ablations:
//!
//! * cache replacement policies under a thrashing scan (LRU vs DRRIP —
//!   the Table 3 baseline choice);
//! * pinned vs unpinned insertion (the XMem mechanism's overhead);
//! * FR-FCFS vs FCFS scheduling on interleaved row streams (the §6
//!   baseline's scheduler);
//! * address-mapping ablation (scheme1 vs scheme5 vs scheme7 on a stream);
//! * AMU `ATOM_LOOKUP` throughput with the ALB (the §4.2 "98.9% coverage"
//!   mechanism) vs uncached AAM walks.

use cache_sim::{Cache, CacheConfig, InsertPriority, ReplacementPolicy};
use cpu_sim::batch::OpAttrs;
use dram_sim::frfcfs::{schedule, Discipline, Request};
use dram_sim::{AddressMapping, Dram, DramConfig};
use xmem_bench::microbench::Timer;
use xmem_core::aam::AamConfig;
use xmem_core::addr::{PhysAddr, VaRange, VirtAddr};
use xmem_core::amu::{AmuConfig, AtomManagementUnit, IdentityMmu};
use xmem_core::atom::AtomId;
use xmem_core::isa::XmemInst;

fn bench_replacement() {
    let mut t = Timer::new("cache_replacement_thrash");
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Drrip,
        ReplacementPolicy::Ship,
    ] {
        t.case(&format!("{policy:?}"), || {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: 64 << 10,
                ways: 16,
                line_bytes: 64,
                latency: 1,
                policy,
            });
            let mut hits = 0u64;
            for _ in 0..4 {
                for i in 0..2048u64 {
                    if cache.probe(i * 64, false) {
                        hits += 1;
                    } else {
                        cache.fill(i * 64, false, InsertPriority::Normal);
                    }
                }
            }
            hits
        });
    }
    t.finish();
}

fn bench_pinning() {
    let mut t = Timer::new("pinned_vs_normal_insertion");
    for pinned in [false, true] {
        t.case(if pinned { "pinned" } else { "normal" }, || {
            let mut cache = Cache::new(CacheConfig {
                size_bytes: 32 << 10,
                ways: 16,
                line_bytes: 64,
                latency: 1,
                policy: ReplacementPolicy::Drrip,
            });
            let prio = if pinned {
                InsertPriority::Pinned
            } else {
                InsertPriority::Normal
            };
            for i in 0..4096u64 {
                cache.fill(i * 64, false, prio);
            }
            cache.pinned_lines()
        });
    }
    t.finish();
}

fn bench_frfcfs() {
    let cfg = DramConfig::ddr3_1066(3.6);
    let reqs: Vec<Request> = (0..512u64)
        .map(|i| Request {
            arrival: i * 4,
            addr: (i % 4) * cfg.row_bytes * 8 + (i / 4) * 64,
            is_write: i % 5 == 0,
        })
        .collect();
    let mut t = Timer::new("dram_scheduling");
    for disc in [Discipline::FrFcfs, Discipline::Fcfs] {
        t.case(&format!("{disc:?}"), || {
            schedule(&reqs, cfg, AddressMapping::scheme5(), disc).1
        });
    }
    t.finish();
}

fn bench_mappings() {
    let cfg = DramConfig::ddr3_1066(3.6);
    let mut t = Timer::new("address_mapping_stream");
    for mapping in [
        AddressMapping::scheme1(),
        AddressMapping::scheme5(),
        AddressMapping::scheme7(),
    ] {
        t.case(mapping.name(), || {
            let mut dram = Dram::new(cfg, mapping);
            let mut time = 0u64;
            for line in 0..2048u64 {
                time += dram.serve(line * 64, OpAttrs::read(), time);
            }
            time
        });
    }
    t.finish();
}

fn bench_alb() {
    let mut amu = AtomManagementUnit::new(AmuConfig {
        aam: AamConfig {
            phys_bytes: 16 << 20,
            ..Default::default()
        },
        ..Default::default()
    });
    let mmu = IdentityMmu::new();
    amu.execute(
        &XmemInst::Map {
            atom: AtomId::new(0),
            range: VaRange::new(VirtAddr::new(0), 8 << 20),
        },
        &mmu,
    )
    .expect("map");
    amu.execute(&XmemInst::Activate(AtomId::new(0)), &mmu)
        .expect("activate");

    let mut t = Timer::new("atom_lookup");
    let mut i = 0u64;
    t.case("with_alb", || {
        i = (i + 64) % (8 << 20);
        amu.active_atom_at(PhysAddr::new(i))
    });
    let mut j = 0u64;
    t.case("uncached_aam_walk", || {
        j = (j + 64) % (8 << 20);
        amu.active_atom_at_uncached(PhysAddr::new(j))
    });
    t.finish();
}

fn main() {
    bench_replacement();
    bench_pinning();
    bench_frfcfs();
    bench_mappings();
    bench_alb();
}
