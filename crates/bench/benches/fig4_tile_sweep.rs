//! Microbench for the Fig 4 experiment: one full-system simulation per
//! (system, tile-size) point, at reduced problem size so each sample
//! completes quickly. The printed figure itself comes from the `fig4`
//! binary; this bench tracks the *simulator's* performance on the same
//! experiment and guards against regressions in the hot paths (cache
//! probes, AMU lookups, pinning refresh).

use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_bench::microbench::Timer;
use xmem_sim::{KernelRun, SystemKind};

fn params(tile: u64) -> KernelParams {
    KernelParams {
        n: 32,
        tile_bytes: tile,
        steps: 3,
        reuse: 200,
    }
}

fn main() {
    let mut t = Timer::new("fig4_tile_sweep");
    for &tile in &[1u64 << 10, 8 << 10, 32 << 10] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            t.case(&format!("{kind}/{}KB", tile >> 10), || {
                KernelRun::new(PolybenchKernel::Gemm, params(tile))
                    .l3_bytes(8 << 10)
                    .system(kind)
                    .run()
                    .cycles()
            });
        }
    }
    t.finish();
}
