//! Criterion bench for the Fig 4 experiment: one full-system simulation per
//! (system, tile-size) point, at reduced problem size so a criterion sample
//! completes quickly. The printed figure itself comes from the `fig4`
//! binary; this bench tracks the *simulator's* performance on the same
//! experiment and guards against regressions in the hot paths (cache
//! probes, AMU lookups, pinning refresh).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_sim::{run_kernel, SystemKind};

fn params(tile: u64) -> KernelParams {
    KernelParams {
        n: 32,
        tile_bytes: tile,
        steps: 3,
        reuse: 200,
    }
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_tile_sweep");
    group.sample_size(10);
    for &tile in &[1u64 << 10, 8 << 10, 32 << 10] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{}KB", tile >> 10)),
                &tile,
                |b, &tile| {
                    b.iter(|| {
                        run_kernel(PolybenchKernel::Gemm, &params(tile), 8 << 10, kind)
                            .cycles()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
