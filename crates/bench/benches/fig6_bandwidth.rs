//! Microbench for the Fig 6 experiment: the three systems at the largest
//! tile size under a reduced-bandwidth memory system.

use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_bench::microbench::Timer;
use xmem_sim::{KernelRun, SystemKind};

fn main() {
    let p = KernelParams {
        n: 32,
        tile_bytes: 16 << 10,
        steps: 3,
        reuse: 200,
    };
    let mut t = Timer::new("fig6_bandwidth");
    for &bw in &[2.0f64, 0.5] {
        for kind in [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem] {
            t.case(&format!("{kind}/{bw}GBps"), || {
                KernelRun::new(PolybenchKernel::Gemm, p)
                    .l3_bytes(8 << 10)
                    .system(kind)
                    .per_core_gbps(bw)
                    .run()
                    .cycles()
            });
        }
    }
    t.finish();
}
