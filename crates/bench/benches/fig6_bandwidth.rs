//! Criterion bench for the Fig 6 experiment: the three systems at the
//! largest tile size under a reduced-bandwidth memory system.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_sim::{run_kernel_bw, SystemKind};

fn bench_fig6(c: &mut Criterion) {
    let p = KernelParams {
        n: 32,
        tile_bytes: 16 << 10,
        steps: 3,
        reuse: 200,
    };
    let mut group = c.benchmark_group("fig6_bandwidth");
    group.sample_size(10);
    for &bw in &[2.0f64, 0.5] {
        for kind in [SystemKind::Baseline, SystemKind::XmemPref, SystemKind::Xmem] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("{bw}GBps")),
                &bw,
                |b, &bw| {
                    b.iter(|| {
                        run_kernel_bw(PolybenchKernel::Gemm, &p, 8 << 10, kind, bw).cycles()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
