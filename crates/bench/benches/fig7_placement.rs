//! Criterion bench for the Fig 7/8 experiment: one placement workload under
//! each of the three systems (reduced access count).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::placement::PlacementWorkload;
use xmem_sim::{run_placement, Uc2System};

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_placement");
    group.sample_size(10);
    for name in ["milc", "mcf", "kmeans"] {
        let mut w = PlacementWorkload::by_name(name).expect("workload exists");
        w.accesses = 10_000;
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            group.bench_with_input(
                BenchmarkId::new(sys.name(), name),
                &w,
                |b, w| b.iter(|| run_placement(w, sys).cycles()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
