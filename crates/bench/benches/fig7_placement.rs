//! Microbench for the Fig 7/8 experiment: one placement workload under
//! each of the three systems (reduced access count).

use workloads::placement::PlacementWorkload;
use xmem_bench::microbench::Timer;
use xmem_sim::{run_placement, Uc2System};

fn main() {
    let mut t = Timer::new("fig7_placement");
    for name in ["milc", "mcf", "kmeans"] {
        let mut w = PlacementWorkload::by_name(name).expect("workload exists");
        w.accesses = 10_000;
        for sys in [Uc2System::Baseline, Uc2System::Xmem, Uc2System::IdealRbl] {
            t.case(&format!("{sys}/{name}"), || run_placement(&w, sys).cycles());
        }
    }
    t.finish();
}
