//! Criterion bench for the Fig 5 experiment: the same tuned binary across
//! shrinking cache sizes, Baseline vs. XMem. Tracks full-system simulation
//! throughput for the portability configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_sim::{run_kernel, SystemKind};

fn bench_fig5(c: &mut Criterion) {
    let p = KernelParams {
        n: 32,
        tile_bytes: 8 << 10, // tuned for the 16 KB cache below
        steps: 3,
        reuse: 200,
    };
    let mut group = c.benchmark_group("fig5_portability");
    group.sample_size(10);
    for &l3 in &[16u64 << 10, 8 << 10, 4 << 10] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            group.bench_with_input(
                BenchmarkId::new(kind.name(), format!("L3={}KB", l3 >> 10)),
                &l3,
                |b, &l3| {
                    b.iter(|| run_kernel(PolybenchKernel::Syrk, &p, l3, kind).cycles())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
