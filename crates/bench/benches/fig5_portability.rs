//! Microbench for the Fig 5 experiment: the same tuned binary across
//! shrinking cache sizes, Baseline vs. XMem. Tracks full-system simulation
//! throughput for the portability configuration.

use workloads::polybench::{KernelParams, PolybenchKernel};
use xmem_bench::microbench::Timer;
use xmem_sim::{KernelRun, SystemKind};

fn main() {
    let p = KernelParams {
        n: 32,
        tile_bytes: 8 << 10, // tuned for the 16 KB cache below
        steps: 3,
        reuse: 200,
    };
    let mut t = Timer::new("fig5_portability");
    for &l3 in &[16u64 << 10, 8 << 10, 4 << 10] {
        for kind in [SystemKind::Baseline, SystemKind::Xmem] {
            t.case(&format!("{kind}/L3={}KB", l3 >> 10), || {
                KernelRun::new(PolybenchKernel::Syrk, p)
                    .l3_bytes(l3)
                    .system(kind)
                    .run()
                    .cycles()
            });
        }
    }
    t.finish();
}
