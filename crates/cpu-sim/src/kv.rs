//! A tiny typed key/value vocabulary for exporting statistics.
//!
//! Every stats struct in the simulator stack exposes a `kv()` method
//! returning `Vec<(&'static str, KvValue)>` — a flat, ordered list of
//! metric names and values. The sweep harness's report sinks
//! (`xmem-sim::report_sink`) turn those lists into JSON objects and CSV
//! columns without any serialization framework; this module lives in
//! `cpu-sim` because it is the root of the stats dependency chain.

/// One exported metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KvValue {
    /// An exact counter.
    U64(u64),
    /// A derived ratio or average.
    F64(f64),
    /// A configuration flag.
    Bool(bool),
}

impl KvValue {
    /// The value as `f64` (counters widen; bools become 0/1).
    pub fn as_f64(self) -> f64 {
        match self {
            KvValue::U64(v) => v as f64,
            KvValue::F64(v) => v,
            KvValue::Bool(b) => u64::from(b) as f64,
        }
    }
}

impl From<u64> for KvValue {
    fn from(v: u64) -> Self {
        KvValue::U64(v)
    }
}

impl From<f64> for KvValue {
    fn from(v: f64) -> Self {
        KvValue::F64(v)
    }
}

impl From<bool> for KvValue {
    fn from(v: bool) -> Self {
        KvValue::Bool(v)
    }
}

/// An ordered list of exported metrics.
pub type KvPairs = Vec<(&'static str, KvValue)>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_widen() {
        assert_eq!(KvValue::from(3u64).as_f64(), 3.0);
        assert_eq!(KvValue::from(0.5).as_f64(), 0.5);
        assert_eq!(KvValue::from(true).as_f64(), 1.0);
        assert_eq!(KvValue::from(false).as_f64(), 0.0);
    }
}
