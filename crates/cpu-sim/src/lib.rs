//! # cpu-sim — trace-driven core timing model
//!
//! The CPU substrate for the XMem reproduction: a limited-window
//! out-of-order core model ([`core::Core`]) driven by op traces
//! ([`trace::Op`]) against any [`batch::MemoryPath`] — either per op or in
//! fixed-size [`batch::OpBatch`] buffers. Scalar models implement the
//! one-method [`trace::MemoryModel`] adapter instead.
//!
//! The model captures what memory-system studies need — issue bandwidth,
//! ROB-bounded miss overlap, load-queue-bounded MLP, and dependent-load
//! serialization — at a fraction of the cost of a full pipeline simulator.
//!
//! ```
//! use cpu_sim::core::{Core, CoreConfig};
//! use cpu_sim::trace::{FixedLatency, Op};
//!
//! let mut core = Core::new(CoreConfig::westmere_like());
//! let trace = (0..64).map(|i| Op::load(i * 64));
//! let stats = core.run(trace, &mut FixedLatency { latency: 30 });
//! assert_eq!(stats.loads, 64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod batch;
pub mod core;
pub mod kv;
pub mod stats;
pub mod trace;

pub use crate::batch::{MemoryPath, OpAttrs, OpBatch, OpKind, BATCH_CAPACITY};
pub use crate::core::{Core, CoreConfig, CoreStats};
pub use crate::kv::{KvPairs, KvValue};
pub use crate::stats::LatencyHistogram;
pub use crate::trace::{FixedLatency, MemoryModel, Op};
