//! The batched memory-path API: op buffers and the [`MemoryPath`] trait.
//!
//! The scalar interface ([`MemoryModel`]) costs one virtual call per
//! simulated memory operation, and its positional arguments (`is_write`,
//! `socket`, `salt`) had drifted apart across the sim crates. This module
//! replaces that chain with one contract:
//!
//! * [`OpBatch`] — a fixed-capacity, `#[repr(C)]` struct-of-arrays buffer
//!   of trace operations: one lane per field (addresses, packed attribute
//!   flags, auxiliary words, cycle timestamps), so the hot loop runs
//!   branch-predictably over contiguous memory;
//! * [`OpAttrs`] — the typed attribute set carried per op (write/dep bits,
//!   NUMA socket, interleave salt), replacing the divergent positional
//!   `access` signatures;
//! * [`MemoryPath`] — the memory side of the machine: serve one op
//!   ([`MemoryPath::serve`]) or a whole buffer in place
//!   ([`MemoryPath::serve_batch`]).
//!
//! Every [`MemoryModel`] is a `MemoryPath` through a blanket adapter, so
//! scalar models (tests, fixed-latency stubs) keep working unchanged while
//! the simulators implement the batched trait directly. Batched execution
//! is *semantically identical* to scalar execution: ops are served in
//! buffer order against the same mutable state, so reports are
//! byte-identical either way (the identity suite in `crates/sim/tests`
//! asserts this).

use crate::trace::{MemoryModel, Op};

/// Fixed capacity of an [`OpBatch`] (ops per flush).
///
/// 256 ops keeps the whole buffer (~6.5 KB) L1-resident while amortizing
/// the per-batch virtual dispatch to a fraction of a cycle per op.
pub const BATCH_CAPACITY: usize = 256;

/// Operation kind, stored in the low bits of the flags lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum OpKind {
    /// Bulk non-memory instructions (the address lane holds the count).
    Compute = 0,
    /// A load (the address lane holds the virtual address).
    Load = 1,
    /// A store (the address lane holds the virtual address).
    Store = 2,
}

/// Typed per-op attributes carried through the memory path.
///
/// This is the single replacement for the positional arguments that had
/// diverged across the sim crates: `is_write` (cache/DRAM/hybrid), `dep`
/// (core), `socket`/`salt` (NUMA). Attributes pack into one `u16` flags
/// word plus one `u64` auxiliary word per op — see [`OpAttrs::pack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpAttrs {
    /// The op writes (store / dirty fill) rather than reads.
    pub write: bool,
    /// The op consumes the previous load's value (serializing load).
    pub dep: bool,
    /// Originating NUMA socket (0 on single-socket systems).
    pub socket: u8,
    /// Deterministic interleave salt (e.g. element index) for
    /// `Interleaved` NUMA placements.
    pub salt: u64,
}

const FLAG_WRITE: u16 = 1 << 2;
const FLAG_DEP: u16 = 1 << 3;
const KIND_MASK: u16 = 0b11;
const SOCKET_SHIFT: u16 = 8;

impl OpAttrs {
    /// Attributes for a read access.
    pub const fn read() -> Self {
        OpAttrs {
            write: false,
            dep: false,
            socket: 0,
            salt: 0,
        }
    }

    /// Attributes for a write access.
    pub const fn write() -> Self {
        OpAttrs {
            write: true,
            dep: false,
            socket: 0,
            salt: 0,
        }
    }

    /// Sets the dependent-load bit.
    pub const fn with_dep(mut self, dep: bool) -> Self {
        self.dep = dep;
        self
    }

    /// Sets the originating socket.
    pub const fn on_socket(mut self, socket: u8) -> Self {
        self.socket = socket;
        self
    }

    /// Sets the interleave salt.
    pub const fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Packs the attributes (with the op kind) into the flags lane word
    /// plus the auxiliary lane word.
    pub const fn pack(self, kind: OpKind) -> (u16, u64) {
        let mut flags = kind as u16;
        if self.write {
            flags |= FLAG_WRITE;
        }
        if self.dep {
            flags |= FLAG_DEP;
        }
        flags |= (self.socket as u16) << SOCKET_SHIFT;
        (flags, self.salt)
    }

    /// Inverse of [`OpAttrs::pack`] (ignoring the kind bits).
    pub const fn unpack(flags: u16, aux: u64) -> Self {
        OpAttrs {
            write: flags & FLAG_WRITE != 0,
            dep: flags & FLAG_DEP != 0,
            socket: (flags >> SOCKET_SHIFT) as u8,
            salt: aux,
        }
    }
}

/// The kind bits of a packed flags word.
const fn kind_of(flags: u16) -> OpKind {
    match flags & KIND_MASK {
        0 => OpKind::Compute,
        1 => OpKind::Load,
        _ => OpKind::Store,
    }
}

/// A fixed-capacity struct-of-arrays buffer of trace operations.
///
/// Layout is `#[repr(C)]`: four parallel lanes, one entry per op, hot
/// lanes first. The `cycles` lane is dual-use: the producer writes each
/// op's *start* cycle, and [`MemoryPath::serve_batch`] overwrites it in
/// place with the op's *latency* — the batch is both request and response,
/// so a round trip allocates nothing.
///
/// # Examples
///
/// ```
/// use cpu_sim::batch::{MemoryPath, OpBatch};
/// use cpu_sim::trace::{FixedLatency, Op};
///
/// let mut batch = OpBatch::new();
/// batch.push_op(Op::load(0x40), 100);
/// batch.push_op(Op::Compute(8), 100);
/// batch.push_op(Op::store(0x80), 101);
/// // FixedLatency is a scalar MemoryModel; the blanket adapter makes it
/// // a MemoryPath.
/// FixedLatency { latency: 7 }.serve_batch(&mut batch);
/// assert_eq!(batch.latency(0), 7);
/// assert_eq!(batch.latency(2), 7);
/// ```
#[derive(Clone)]
#[repr(C)]
pub struct OpBatch {
    /// Virtual address per op (instruction count for `Compute`).
    addrs: [u64; BATCH_CAPACITY],
    /// Start cycle in, latency out (memory ops only).
    cycles: [u64; BATCH_CAPACITY],
    /// Auxiliary attribute word (interleave salt).
    aux: [u64; BATCH_CAPACITY],
    /// Packed kind + attribute flags.
    flags: [u16; BATCH_CAPACITY],
    len: u32,
}

impl std::fmt::Debug for OpBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpBatch").field("len", &self.len).finish()
    }
}

impl Default for OpBatch {
    fn default() -> Self {
        Self::new()
    }
}

impl OpBatch {
    /// An empty batch.
    pub const fn new() -> Self {
        OpBatch {
            addrs: [0; BATCH_CAPACITY],
            cycles: [0; BATCH_CAPACITY],
            aux: [0; BATCH_CAPACITY],
            flags: [0; BATCH_CAPACITY],
            len: 0,
        }
    }

    /// Ops currently buffered.
    #[inline]
    pub const fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when no ops are buffered.
    #[inline]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when the batch must be flushed before the next push.
    #[inline]
    pub const fn is_full(&self) -> bool {
        self.len as usize == BATCH_CAPACITY
    }

    /// Empties the batch (lanes are overwritten by subsequent pushes).
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Appends one op with explicit attributes and start cycle.
    ///
    /// # Panics
    ///
    /// Panics when the batch is full; producers check [`OpBatch::is_full`]
    /// and flush first.
    #[inline]
    pub fn push(&mut self, kind: OpKind, addr: u64, attrs: OpAttrs, start: u64) {
        let i = self.len as usize;
        assert!(i < BATCH_CAPACITY, "OpBatch overflow: flush before push");
        let (flags, aux) = attrs.pack(kind);
        self.addrs[i] = addr;
        self.cycles[i] = start;
        self.aux[i] = aux;
        self.flags[i] = flags;
        self.len += 1;
    }

    /// Appends a trace [`Op`] with default attributes.
    #[inline]
    pub fn push_op(&mut self, op: Op, start: u64) {
        match op {
            Op::Compute(n) => self.push(OpKind::Compute, n as u64, OpAttrs::default(), start),
            Op::Load { addr, dep } => {
                self.push(OpKind::Load, addr, OpAttrs::read().with_dep(dep), start)
            }
            Op::Store { addr } => self.push(OpKind::Store, addr, OpAttrs::write(), start),
        }
    }

    /// The kind of op `i`.
    #[inline]
    pub fn kind(&self, i: usize) -> OpKind {
        kind_of(self.flags[i])
    }

    /// The address lane of op `i` (instruction count for `Compute`).
    #[inline]
    pub fn addr(&self, i: usize) -> u64 {
        self.addrs[i]
    }

    /// The unpacked attributes of op `i`.
    #[inline]
    pub fn attrs(&self, i: usize) -> OpAttrs {
        OpAttrs::unpack(self.flags[i], self.aux[i])
    }

    /// The start cycle of op `i` (producer side of the cycles lane).
    #[inline]
    pub fn start(&self, i: usize) -> u64 {
        self.cycles[i]
    }

    /// The served latency of op `i` (consumer side of the cycles lane).
    #[inline]
    pub fn latency(&self, i: usize) -> u64 {
        self.cycles[i]
    }

    /// Writes op `i`'s latency in place.
    #[inline]
    pub fn set_latency(&mut self, i: usize, latency: u64) {
        self.cycles[i] = latency;
    }

    /// Reconstructs op `i` as a trace [`Op`].
    ///
    /// # Panics
    ///
    /// Panics if a `Compute` count exceeds `u32::MAX` (pushes from
    /// [`OpBatch::push_op`] cannot, since `Op::Compute` holds a `u32`).
    #[inline]
    pub fn op(&self, i: usize) -> Op {
        match self.kind(i) {
            OpKind::Compute => Op::Compute(
                // simlint: allow(unwrap, reason = "documented `# Panics` contract; push_op can only store u32 counts")
                u32::try_from(self.addrs[i]).expect("compute count exceeds u32 in batch"),
            ),
            OpKind::Load => Op::Load {
                addr: self.addrs[i],
                dep: self.attrs(i).dep,
            },
            OpKind::Store => Op::Store {
                addr: self.addrs[i],
            },
        }
    }

    /// Iterates the buffered ops as trace [`Op`] values.
    pub fn ops(&self) -> impl Iterator<Item = Op> + '_ {
        (0..self.len()).map(|i| self.op(i))
    }
}

/// The batched interface between the core model and the memory hierarchy.
///
/// This is the memory-path contract: [`MemoryPath::serve`] performs one
/// access (the moral equivalent of the old scalar `access`, but with typed
/// [`OpAttrs`]), and [`MemoryPath::serve_batch`] serves a whole
/// [`OpBatch`] in place. Implementations mutate their internal state per
/// op *in buffer order*, which is what keeps batched and scalar execution
/// byte-identical.
///
/// Scalar [`MemoryModel`] implementations get this trait for free through
/// the blanket adapter, which is the migration path for existing callers.
pub trait MemoryPath {
    /// Serves one access at cycle `now`, returning its latency in cycles.
    fn serve(&mut self, addr: u64, attrs: OpAttrs, now: u64) -> u64;

    /// Serves every memory op in `batch`, overwriting each op's cycles
    /// lane entry (start cycle in, latency out). `Compute` entries are
    /// untouched. The default forwards to [`MemoryPath::serve`] per op.
    fn serve_batch(&mut self, batch: &mut OpBatch) {
        for i in 0..batch.len() {
            if matches!(batch.kind(i), OpKind::Compute) {
                continue;
            }
            let latency = self.serve(batch.addr(i), batch.attrs(i), batch.start(i));
            batch.set_latency(i, latency);
        }
    }
}

/// The scalar adapter: every [`MemoryModel`] serves the batched API by
/// dropping the attributes it never modeled (`dep`, `socket`, `salt`).
impl<M: MemoryModel + ?Sized> MemoryPath for M {
    #[inline]
    fn serve(&mut self, addr: u64, attrs: OpAttrs, now: u64) -> u64 {
        self.access(addr, attrs.write, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FixedLatency;

    #[test]
    fn attrs_pack_round_trip() {
        let cases = [
            OpAttrs::read(),
            OpAttrs::write(),
            OpAttrs::read().with_dep(true),
            OpAttrs::write().on_socket(3).with_salt(0xDEAD_BEEF),
            OpAttrs::read().on_socket(255).with_salt(u64::MAX),
        ];
        for attrs in cases {
            for kind in [OpKind::Compute, OpKind::Load, OpKind::Store] {
                let (flags, aux) = attrs.pack(kind);
                assert_eq!(kind_of(flags), kind);
                assert_eq!(OpAttrs::unpack(flags, aux), attrs);
            }
        }
    }

    #[test]
    fn ops_round_trip_through_lanes() {
        let ops = [
            Op::Compute(400),
            Op::load(0x1000),
            Op::load_dep(0x2000),
            Op::store(0x3000),
            Op::Compute(1),
        ];
        let mut batch = OpBatch::new();
        for (i, &op) in ops.iter().enumerate() {
            batch.push_op(op, i as u64 * 10);
        }
        assert_eq!(batch.len(), ops.len());
        let back: Vec<Op> = batch.ops().collect();
        assert_eq!(back, ops);
        assert_eq!(batch.start(3), 30);
    }

    #[test]
    fn serve_batch_default_matches_scalar() {
        let mut batch = OpBatch::new();
        batch.push_op(Op::load(0x40), 5);
        batch.push_op(Op::Compute(100), 5);
        batch.push_op(Op::store(0x80), 6);
        let mut mem = FixedLatency { latency: 9 };
        mem.serve_batch(&mut batch);
        assert_eq!(batch.latency(0), 9);
        // Compute lanes are untouched (still the start cycle).
        assert_eq!(batch.cycles[1], 5);
        assert_eq!(batch.latency(2), 9);
    }

    #[test]
    fn capacity_and_clear() {
        let mut batch = OpBatch::new();
        assert!(batch.is_empty());
        for i in 0..BATCH_CAPACITY {
            assert!(!batch.is_full());
            batch.push_op(Op::load(i as u64 * 64), 0);
        }
        assert!(batch.is_full());
        batch.clear();
        assert!(batch.is_empty() && !batch.is_full());
    }

    #[test]
    #[should_panic(expected = "OpBatch overflow")]
    fn overflow_panics() {
        let mut batch = OpBatch::new();
        for i in 0..=BATCH_CAPACITY {
            batch.push_op(Op::load(i as u64), 0);
        }
    }
}
