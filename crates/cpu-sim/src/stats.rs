//! Small statistics utilities shared by the simulators: a log₂-bucketed
//! latency histogram with percentile queries.

/// Number of log₂ buckets: covers latencies up to 2³¹ cycles.
const BUCKETS: usize = 32;

/// A log₂-bucketed histogram of latencies (or any positive counts).
///
/// `Copy`-friendly fixed storage so it can live inside stats structs.
/// Bucket `i` holds samples with `floor(log2(v)) == i` (bucket 0 holds 0
/// and 1).
///
/// # Examples
///
/// ```
/// use cpu_sim::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [10, 20, 40, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.samples(), 4);
/// // p50 falls in the bucket containing 20.
/// assert!(h.percentile(0.5) >= 16 && h.percentile(0.5) <= 63);
/// assert!(h.percentile(1.0) >= 512);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            counts: [0; BUCKETS],
            total: 0,
        }
    }

    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn samples(&self) -> u64 {
        self.total
    }

    /// An upper bound of the bucket containing the `q`-quantile
    /// (`q` in `[0, 1]`). Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return (1u64 << (i + 1)).saturating_sub(1);
            }
        }
        u64::MAX
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Per-bucket counts, for rendering.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 0);
        assert_eq!(LatencyHistogram::bucket_of(2), 1);
        assert_eq!(LatencyHistogram::bucket_of(3), 1);
        assert_eq!(LatencyHistogram::bucket_of(4), 2);
        assert_eq!(LatencyHistogram::bucket_of(1023), 9);
        assert_eq!(LatencyHistogram::bucket_of(1024), 10);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_track_distribution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(50); // bucket 5 (32..63)
        }
        for _ in 0..10 {
            h.record(5000); // bucket 12
        }
        assert!(h.percentile(0.5) <= 63);
        assert!(h.percentile(0.89) <= 63);
        assert!(h.percentile(0.95) >= 4096);
        assert_eq!(h.samples(), 100);
    }

    /// The empty-histogram contract: every quantile of zero samples is 0,
    /// never a bucket bound. Locked across the full `q` range, including
    /// the out-of-range values `percentile` clamps.
    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.samples(), 0);
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0] {
            assert_eq!(h.percentile(q), 0, "q = {q}");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        a.record(10);
        let mut b = LatencyHistogram::new();
        b.record(1000);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.samples(), 3);
        assert!(a.percentile(1.0) >= 512);
    }

    /// Merge-then-percentile round trip: merging shards must answer every
    /// percentile exactly as one histogram that recorded all the samples
    /// directly — including the degenerate empty-shard cases.
    #[test]
    fn merge_then_percentile_round_trips() {
        let samples = [1u64, 3, 7, 50, 50, 900, 5000, 5000, 70_000, 1 << 30];
        let mut whole = LatencyHistogram::new();
        for &v in &samples {
            whole.record(v);
        }
        // Shard the samples unevenly, then merge the shards back together.
        let mut merged = LatencyHistogram::new();
        for chunk in samples.chunks(3) {
            let mut shard = LatencyHistogram::new();
            for &v in chunk {
                shard.record(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, whole);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.percentile(q), whole.percentile(q), "q = {q}");
        }
        // Empty shards are identity elements on both sides of a merge.
        let mut empty = LatencyHistogram::new();
        merged.merge(&LatencyHistogram::new());
        assert_eq!(merged, whole);
        empty.merge(&whole);
        assert_eq!(empty, whole);
        // Merging two empties stays empty, and still answers 0.
        let mut e2 = LatencyHistogram::new();
        e2.merge(&LatencyHistogram::new());
        assert_eq!(e2.samples(), 0);
        assert_eq!(e2.percentile(0.5), 0);
    }
}
