//! A trace-driven, limited-window out-of-order core timing model.
//!
//! The model reproduces the first-order timing behaviour of the paper's
//! Westmere-like configuration (Table 3: 3.6 GHz, 4-wide issue, 128-entry
//! ROB, 32-entry load queue):
//!
//! * the **front end** retires up to `issue_width` instructions per cycle;
//! * an op cannot issue until the op `rob_entries` before it has completed
//!   (in-order retirement from a finite reorder buffer);
//! * at most `lq_entries` loads are in flight (load-queue limit) — this is
//!   what bounds memory-level parallelism;
//! * a *dependent* load additionally waits for the previous load's value
//!   (pointer chasing serializes).
//!
//! This class of "interval" model is standard for memory-system studies: the
//! quantities the XMem results depend on (miss overlap, effective MLP,
//! exposed memory latency) are captured, while pipeline details that don't
//! affect them are abstracted away (see DESIGN.md for the substitution
//! argument).

use crate::batch::{MemoryPath, OpAttrs, OpBatch, OpKind};
use crate::trace::{FixedLatency, Op};

/// Fixed-capacity FIFO of in-flight loads as `(seq, completion)` pairs.
///
/// The core pushes and pops one entry per load in the hot step loop, and
/// its occupancy is bounded by the load-queue size, so a power-of-two ring
/// with masked indices replaces `VecDeque`'s growth and wrap checks.
#[derive(Debug)]
struct LoadRing {
    buf: Vec<(u64, u64)>,
    mask: usize,
    head: usize,
    len: usize,
}

impl LoadRing {
    /// A ring holding at least `cap` entries.
    fn with_capacity(cap: usize) -> Self {
        let n = cap.next_power_of_two();
        LoadRing {
            buf: vec![(0, 0); n],
            mask: n - 1,
            head: 0,
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn front(&self) -> Option<&(u64, u64)> {
        (self.len > 0).then(|| &self.buf[self.head])
    }

    #[inline]
    fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.head = (self.head + 1) & self.mask;
        self.len -= 1;
    }

    #[inline]
    fn push_back(&mut self, v: (u64, u64)) {
        debug_assert!(self.len <= self.mask, "LoadRing overflow");
        self.buf[(self.head + self.len) & self.mask] = v;
        self.len += 1;
    }

    fn iter(&self) -> impl Iterator<Item = &(u64, u64)> + '_ {
        (0..self.len).map(move |i| &self.buf[(self.head + i) & self.mask])
    }
}

/// Core configuration (Table 3 defaults via [`CoreConfig::westmere_like`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreConfig {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries (maximum loads in flight).
    pub lq_entries: usize,
    /// Core frequency in GHz (used to convert cycles to wall time).
    pub freq_ghz: f64,
}

impl CoreConfig {
    /// The paper's Westmere-like configuration (Table 3).
    pub fn westmere_like() -> Self {
        CoreConfig {
            issue_width: 4,
            rob_entries: 128,
            lq_entries: 32,
            freq_ghz: 3.6,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::westmere_like()
    }
}

/// Statistics from one simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions executed (compute + loads + stores).
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// Sum of load latencies in cycles (for average-latency reporting).
    pub total_load_latency: u64,
}

impl CoreStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Average load latency in cycles.
    pub fn avg_load_latency(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.total_load_latency as f64 / self.loads as f64
        }
    }

    /// Wall-clock seconds at `freq_ghz`.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.cycles as f64 / (freq_ghz * 1e9)
    }

    /// Exports counters and derived metrics for the report sinks.
    pub fn kv(&self) -> crate::kv::KvPairs {
        vec![
            ("cycles", self.cycles.into()),
            ("instructions", self.instructions.into()),
            ("loads", self.loads.into()),
            ("stores", self.stores.into()),
            // Raw total alongside the derived average, so a serialized
            // report reconstructs to the exact counter values.
            ("total_load_latency", self.total_load_latency.into()),
            ("ipc", self.ipc().into()),
            ("avg_load_latency", self.avg_load_latency().into()),
        ]
    }
}

/// The core timing model.
///
/// Two driving styles are supported:
///
/// * **pull**: [`Core::run`] consumes an op iterator;
/// * **push**: [`Core::step`] feeds one op at a time (used when the trace
///   generator performs side effects — e.g. XMem calls — between ops), with
///   [`Core::stats`] available at any point.
///
/// # Examples
///
/// ```
/// use cpu_sim::core::{Core, CoreConfig};
/// use cpu_sim::trace::{FixedLatency, Op};
///
/// let mut core = Core::new(CoreConfig::westmere_like());
/// let ops = vec![Op::Compute(400), Op::load(0x1000), Op::Compute(400)];
/// let stats = core.run(ops, &mut FixedLatency { latency: 4 });
/// assert_eq!(stats.instructions, 801);
/// // 801 instructions at 4-wide ≈ 200 cycles; the L1-hit load hides.
/// assert!(stats.cycles >= 200 && stats.cycles < 220);
/// ```
#[derive(Debug)]
pub struct Core {
    config: CoreConfig,
    stats: CoreStats,
    /// `log2(issue_width)` when the width is a power of two (every real
    /// configuration): lets the per-op front-end time be a shift instead of
    /// a 64-bit division.
    width_shift: Option<u32>,
    /// Issue slots consumed so far; front-end time = issued / width.
    issued: u64,
    /// Sequence number of the next op (computes advance it by n).
    seq: u64,
    /// In-flight or completed loads as (seq, completion), ordered by seq.
    loads: LoadRing,
    /// Max completion among ops already forced out of the ROB window.
    retire_frontier: u64,
    /// Completion time of the most recent load (for dependent loads).
    last_load_completion: u64,
    /// Latest completion seen (defines final cycle count).
    max_completion: u64,
}

impl Core {
    /// Creates a core with the given configuration.
    pub fn new(config: CoreConfig) -> Self {
        assert!(config.issue_width > 0, "issue width must be non-zero");
        assert!(config.rob_entries > 0, "ROB must be non-empty");
        assert!(config.lq_entries > 0, "load queue must be non-empty");
        Core {
            stats: CoreStats::default(),
            width_shift: config
                .issue_width
                .is_power_of_two()
                .then(|| config.issue_width.trailing_zeros()),
            issued: 0,
            seq: 0,
            loads: LoadRing::with_capacity(config.lq_entries + 1),
            retire_frontier: 0,
            last_load_completion: 0,
            max_completion: 0,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// Resets all execution state and statistics.
    pub fn reset(&mut self) {
        *self = Core::new(self.config);
    }

    /// Front-end time: the cycle the next op issues in.
    #[inline]
    fn front_time(&self) -> u64 {
        match self.width_shift {
            Some(s) => self.issued >> s,
            None => self.issued / self.config.issue_width as u64,
        }
    }

    /// The core's current notion of time (cycle at which everything issued
    /// so far will have completed).
    pub fn now(&self) -> u64 {
        let frontend = self.issued.div_ceil(self.config.issue_width as u64);
        frontend.max(self.max_completion).max(self.retire_frontier)
    }

    /// Statistics as of the ops stepped so far.
    pub fn stats(&self) -> CoreStats {
        let mut s = self.stats;
        s.cycles = self.now();
        s
    }

    /// Instructions executed so far. Cheap enough to poll per op — this is
    /// the counter epoch-sampled telemetry keys its sampling decision on.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.stats.instructions
    }

    /// Loads currently tracked in the ROB window (in flight or completed
    /// but not yet retired): a proxy for ROB occupancy by memory ops.
    pub fn rob_load_occupancy(&self) -> usize {
        self.loads.len()
    }

    /// Loads whose completion time lies beyond the front end's current
    /// cycle — i.e. misses still outstanding at this instant.
    pub fn outstanding_loads(&self) -> usize {
        let ft = self.front_time();
        self.loads.iter().filter(|&&(_, c)| c > ft).count()
    }

    /// Bulk compute: advances the front end only. Compute completes at the
    /// front end; it never extends the critical path beyond issue
    /// bandwidth.
    #[inline]
    fn step_compute(&mut self, n: u64) {
        self.issued += n;
        self.seq += n;
        self.stats.instructions += n;
    }

    #[inline]
    fn step_load<M>(&mut self, addr: u64, dep: bool, mem: &mut M)
    where
        M: MemoryPath + ?Sized,
    {
        let rob = self.config.rob_entries as u64;
        let lq = self.config.lq_entries;
        // Drop loads that have left the ROB window, feeding the retire
        // frontier.
        while let Some(&(s, c)) = self.loads.front() {
            if s + rob <= self.seq || self.loads.len() >= lq {
                self.retire_frontier = self.retire_frontier.max(c);
                self.loads.pop_front();
            } else {
                break;
            }
        }
        let ft = self.front_time();
        let mut start = ft.max(self.retire_frontier);
        if dep {
            start = start.max(self.last_load_completion);
        }
        let latency = mem.serve(addr, OpAttrs::read().with_dep(dep), start);
        let completion = start + latency;
        self.loads.push_back((self.seq, completion));
        self.last_load_completion = completion;
        self.max_completion = self.max_completion.max(completion);
        self.stats.total_load_latency += latency;
        self.stats.loads += 1;
        self.stats.instructions += 1;
        self.issued += 1;
        self.seq += 1;
    }

    #[inline]
    fn step_store<M>(&mut self, addr: u64, mem: &mut M)
    where
        M: MemoryPath + ?Sized,
    {
        let ft = self.front_time();
        let start = ft.max(self.retire_frontier);
        // Stores retire through the write buffer: their latency is off the
        // critical path, but the access still updates the memory model's
        // state (fills, bank timings, traffic).
        let _ = mem.serve(addr, OpAttrs::write(), start);
        self.stats.stores += 1;
        self.stats.instructions += 1;
        self.issued += 1;
        self.seq += 1;
    }

    /// Feeds one op through the model.
    #[inline]
    pub fn step<M>(&mut self, op: Op, mem: &mut M)
    where
        M: MemoryPath + ?Sized,
    {
        match op {
            Op::Compute(n) => self.step_compute(n as u64),
            Op::Load { addr, dep } => self.step_load(addr, dep, mem),
            Op::Store { addr } => self.step_store(addr, mem),
        }
    }

    /// Feeds one op through the model, retiring loads with a caller-fixed
    /// latency instead of consulting a memory model.
    ///
    /// This is the *functional-warmup* step of sampled execution: between
    /// detailed windows, memory state (tags, LRU, row buffers) is warmed
    /// separately while the core keeps its issue/ROB/load-queue machinery
    /// advancing at a nominal cost, so a detailed window opens with a
    /// plausibly occupied pipeline rather than an idle one.
    #[inline]
    pub fn step_fixed(&mut self, op: Op, latency: u64) {
        self.step(op, &mut FixedLatency { latency });
    }

    /// Fast-forward accounting: counts the op (instructions, loads, stores,
    /// issue slots) without entering the load queue or touching any memory
    /// model. Loads and stores complete instantly at the front end.
    ///
    /// Used by the fast-forward phase of sampled execution, where neither
    /// core timing nor memory state is simulated.
    #[inline]
    pub fn skip(&mut self, op: Op) {
        match op {
            Op::Compute(n) => self.step_compute(n as u64),
            Op::Load { .. } => {
                self.stats.loads += 1;
                self.stats.instructions += 1;
                self.issued += 1;
                self.seq += 1;
            }
            Op::Store { .. } => {
                self.stats.stores += 1;
                self.stats.instructions += 1;
                self.issued += 1;
                self.seq += 1;
            }
        }
    }

    /// Bulk [`Core::skip`] accounting for `loads` load ops plus `stores`
    /// store ops, in one update. Exactly equivalent to that many scalar
    /// `skip` calls (each op counts one instruction and one issue slot, and
    /// the relative order of instant-retiring skips is unobservable), so
    /// the fast-forward loop can tally a whole run and settle once.
    pub fn skip_bulk(&mut self, loads: u64, stores: u64) {
        self.stats.loads += loads;
        self.stats.stores += stores;
        self.stats.instructions += loads + stores;
        self.issued += loads + stores;
        self.seq += loads + stores;
    }

    /// Feeds every op in `batch` through the model, in buffer order.
    ///
    /// Exactly equivalent to calling [`Core::step`] per op — the batch only
    /// amortizes dispatch, it never reorders, so batched and scalar runs
    /// produce identical statistics — but dispatches straight off the SoA
    /// lanes instead of reconstructing an [`Op`] enum per entry.
    pub fn step_batch<M>(&mut self, batch: &OpBatch, mem: &mut M)
    where
        M: MemoryPath + ?Sized,
    {
        self.step_batch_range(batch, 0, batch.len(), mem);
    }

    /// Feeds ops `start..end` of `batch` through the model, in buffer
    /// order. Same contract as [`Core::step_batch`], restricted to a
    /// sub-range — sampled execution uses this to run each same-phase run
    /// of a batch in one tight loop.
    pub fn step_batch_range<M>(&mut self, batch: &OpBatch, start: usize, end: usize, mem: &mut M)
    where
        M: MemoryPath + ?Sized,
    {
        for i in start..end {
            match batch.kind(i) {
                OpKind::Compute => self.step_compute(batch.addr(i)),
                OpKind::Load => self.step_load(batch.addr(i), batch.attrs(i).dep, mem),
                OpKind::Store => self.step_store(batch.addr(i), mem),
            }
        }
    }

    /// Runs an op stream to completion against `mem`, returning statistics.
    ///
    /// Resets the core first: each `run` is an independent program. The
    /// model is deterministic: the same trace and memory model produce the
    /// same statistics.
    pub fn run<I, M>(&mut self, ops: I, mem: &mut M) -> CoreStats
    where
        I: IntoIterator<Item = Op>,
        M: MemoryPath + ?Sized,
    {
        self.reset();
        for op in ops {
            self.step(op, mem);
        }
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::FixedLatency;

    fn core() -> Core {
        Core::new(CoreConfig::westmere_like())
    }

    #[test]
    fn compute_only_bound_by_issue_width() {
        let stats = core().run(vec![Op::Compute(4000)], &mut FixedLatency { latency: 1 });
        assert_eq!(stats.cycles, 1000);
        assert_eq!(stats.instructions, 4000);
        assert!((stats.ipc() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn single_long_load_exposed() {
        let stats = core().run(vec![Op::load(0)], &mut FixedLatency { latency: 200 });
        assert_eq!(stats.cycles, 200);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.avg_load_latency(), 200.0);
    }

    #[test]
    fn independent_loads_overlap() {
        // 8 independent misses of 100 cycles: with MLP they overlap almost
        // fully (issue 2 per cycle is not the limit; LQ is 32).
        let ops: Vec<Op> = (0..8).map(|i| Op::load(i * 64)).collect();
        let stats = core().run(ops, &mut FixedLatency { latency: 100 });
        assert!(stats.cycles < 8 * 100 / 2, "cycles = {}", stats.cycles);
        assert!(stats.cycles >= 100);
    }

    #[test]
    fn dependent_loads_serialize() {
        let ops: Vec<Op> = (0..8).map(|i| Op::load_dep(i * 64)).collect();
        let stats = core().run(ops, &mut FixedLatency { latency: 100 });
        assert_eq!(stats.cycles, 800);
    }

    #[test]
    fn lq_limits_mlp() {
        // 64 independent misses, LQ = 32: second half waits for first half.
        let cfg = CoreConfig {
            lq_entries: 32,
            rob_entries: 1024,
            ..CoreConfig::westmere_like()
        };
        let ops: Vec<Op> = (0..64).map(|i| Op::load(i * 64)).collect();
        let stats = Core::new(cfg).run(ops, &mut FixedLatency { latency: 100 });
        // Two waves of ~100 cycles each.
        assert!(stats.cycles >= 200, "cycles = {}", stats.cycles);
        assert!(stats.cycles < 320, "cycles = {}", stats.cycles);
    }

    #[test]
    fn rob_limits_overlap_across_compute() {
        // A miss followed by > ROB worth of compute, then another miss: the
        // second miss cannot start until the first retires.
        let cfg = CoreConfig {
            rob_entries: 128,
            ..CoreConfig::westmere_like()
        };
        let ops = vec![Op::load(0), Op::Compute(256), Op::load(64)];
        let stats = Core::new(cfg).run(ops, &mut FixedLatency { latency: 300 });
        // First load completes at 300; second starts no earlier than 300.
        assert!(stats.cycles >= 600, "cycles = {}", stats.cycles);
    }

    #[test]
    fn stores_do_not_stall() {
        let ops: Vec<Op> = (0..16).map(|i| Op::store(i * 64)).collect();
        let stats = core().run(ops, &mut FixedLatency { latency: 500 });
        assert_eq!(stats.stores, 16);
        assert!(stats.cycles <= 8, "cycles = {}", stats.cycles);
    }

    #[test]
    fn deterministic() {
        let ops: Vec<Op> = (0..100)
            .map(|i| {
                if i % 3 == 0 {
                    Op::load(i * 64)
                } else {
                    Op::Compute(5)
                }
            })
            .collect();
        let a = core().run(ops.clone(), &mut FixedLatency { latency: 30 });
        let b = core().run(ops, &mut FixedLatency { latency: 30 });
        assert_eq!(a, b);
    }

    #[test]
    fn step_fixed_matches_fixed_latency_memory() {
        let ops: Vec<Op> = (0..50)
            .map(|i| match i % 3 {
                0 => Op::load(i * 64),
                1 => Op::Compute(7),
                _ => Op::store(i * 64),
            })
            .collect();
        let via_mem = core().run(ops.clone(), &mut FixedLatency { latency: 12 });
        let mut c = core();
        for op in ops {
            c.step_fixed(op, 12);
        }
        assert_eq!(c.stats(), via_mem);
    }

    #[test]
    fn skip_counts_ops_without_memory_time() {
        let mut c = core();
        c.skip(Op::Compute(40));
        for i in 0..8 {
            c.skip(Op::load(i * 64));
        }
        c.skip(Op::store(0));
        let stats = c.stats();
        assert_eq!(stats.instructions, 49);
        assert_eq!(stats.loads, 8);
        assert_eq!(stats.stores, 1);
        assert_eq!(stats.total_load_latency, 0);
        // Front-end bound only: 49 instructions at 4-wide.
        assert_eq!(stats.cycles, 49u64.div_ceil(4));
    }

    #[test]
    fn seconds_conversion() {
        let stats = CoreStats {
            cycles: 3_600_000_000,
            ..Default::default()
        };
        assert!((stats.seconds(3.6) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "issue width")]
    fn zero_width_rejected() {
        let _ = Core::new(CoreConfig {
            issue_width: 0,
            ..CoreConfig::westmere_like()
        });
    }
}
