//! Operation traces: the instruction stream the core model executes.
//!
//! Workloads are *trace generators*: lazy iterators of [`Op`] values. Only
//! the events that matter for memory-system studies are modeled — bulk
//! compute (which occupies issue slots), loads (which may miss and stall),
//! and stores (which drain through the write buffer). This is the standard
//! abstraction level for memory-hierarchy simulation (the paper's zsim
//! substrate drives its cache models the same way).

/// One event in an instruction trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` back-to-back non-memory instructions.
    Compute(u32),
    /// A load from a virtual address.
    Load {
        /// Virtual address of the load.
        addr: u64,
        /// If `true`, this load consumes the value of the previous load and
        /// cannot issue until it completes (pointer chasing). Independent
        /// loads (`dep == false`) overlap, which is what creates
        /// memory-level parallelism.
        dep: bool,
    },
    /// A store to a virtual address.
    Store {
        /// Virtual address of the store.
        addr: u64,
    },
}

impl Op {
    /// Convenience constructor for an independent load.
    #[inline]
    pub const fn load(addr: u64) -> Op {
        Op::Load { addr, dep: false }
    }

    /// Convenience constructor for a dependent (serialized) load.
    #[inline]
    pub const fn load_dep(addr: u64) -> Op {
        Op::Load { addr, dep: true }
    }

    /// Convenience constructor for a store.
    #[inline]
    pub const fn store(addr: u64) -> Op {
        Op::Store { addr }
    }

    /// Number of instructions this event represents.
    #[inline]
    pub const fn instructions(&self) -> u64 {
        match self {
            Op::Compute(n) => *n as u64,
            Op::Load { .. } | Op::Store { .. } => 1,
        }
    }

    /// Whether the event touches memory.
    #[inline]
    pub const fn is_memory(&self) -> bool {
        matches!(self, Op::Load { .. } | Op::Store { .. })
    }
}

/// The *scalar adapter* trait for simple memory models.
///
/// The simulators implement the batched [`crate::batch::MemoryPath`]
/// contract directly; a blanket impl in `crate::batch` lifts every
/// `MemoryModel` to a `MemoryPath`, so fixed-latency stubs and test
/// doubles stay one method long. New per-op `access` chains must not grow
/// back in sim-state crates — simlint's `scalar-access` rule flags them;
/// implement `MemoryPath::serve` (or use this adapter from a test) instead.
///
/// `access` is called once per load/store, with the core's issue time; it
/// returns the access latency in core cycles. Implementations are expected
/// to update their internal state (fills, replacements, bank timings).
pub trait MemoryModel {
    /// Performs an access at cycle `now`, returning its latency in cycles.
    fn access(&mut self, addr: u64, is_write: bool, now: u64) -> u64;
}

/// A fixed-latency memory, useful for tests and core-model studies.
#[derive(Debug, Clone, Copy)]
pub struct FixedLatency {
    /// Latency of every access in cycles.
    pub latency: u64,
}

impl MemoryModel for FixedLatency {
    fn access(&mut self, _addr: u64, _is_write: bool, _now: u64) -> u64 {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_counts() {
        assert_eq!(Op::Compute(17).instructions(), 17);
        assert_eq!(Op::load(0).instructions(), 1);
        assert_eq!(Op::store(0).instructions(), 1);
    }

    #[test]
    fn op_memory_classification() {
        assert!(!Op::Compute(1).is_memory());
        assert!(Op::load(8).is_memory());
        assert!(Op::store(8).is_memory());
        assert!(Op::load_dep(8).is_memory());
        assert!(matches!(Op::load_dep(8), Op::Load { dep: true, .. }));
    }

    #[test]
    fn fixed_latency_model() {
        let mut m = FixedLatency { latency: 7 };
        assert_eq!(m.access(0x100, false, 0), 7);
        assert_eq!(m.access(0x200, true, 50), 7);
    }
}
